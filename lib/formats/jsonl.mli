(** JSONL — newline-delimited JSON objects: the hierarchical textual format.

    The paper discusses hierarchical formats as a code-generation
    opportunity (§4.1: keep or flatten nesting per query) and names
    non-relational data models as future work (§8). This module supplies
    the byte-level machinery for a JIT access path over JSON lines:

    - nested fields are addressed by dotted paths (["user.id"]), so RAW's
      partial schemas apply naturally — declare only the paths of interest;
    - key order varies per object and fields may be absent (→ NULL), so,
      unlike CSV, extraction matches keys rather than counting columns;
    - the positional-map analogue indexes {e row starts} only: the
      structure inside an object is not positionally stable, but jumping to
      a row and matching keys beats re-tokenizing the whole file.

    Extraction is callback-based: {!Extract} walks one object and emits the
    byte spans of wanted paths; the scan kernels in [Raw_core.Scan_jsonl]
    supply compiled (or interpreted) per-path emitters. *)

open Raw_vector
open Raw_storage

(** {1 Generation} *)

val write_file : path:string -> (string * Value.t) list Seq.t -> unit
(** One object per row from dotted-path/value pairs; dotted paths nest
    (pairs sharing a prefix must be adjacent). Strings are escaped. *)

val generate :
  path:string ->
  n_rows:int ->
  fields:(string * Dtype.t) list ->
  ?missing_probability:float ->
  ?shuffle_keys:bool ->
  seed:int ->
  unit ->
  unit
(** Deterministic synthetic objects with the same value distributions as
    {!Csv.generate}. [missing_probability] independently drops fields
    (default 0); [shuffle_keys] (default true) permutes top-level key order
    per row, as real-world JSON does. *)

(** {1 Values (reference parser — tests, tooling)} *)

type json =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Object of (string * json) list
  | Array of json list

val parse : string -> json
(** Full (strict enough) JSON parser. Raises the typed
    [Raw_storage.Scan_errors.Error] on malformed input. *)

val unescape : Bytes.t -> int -> int -> string
(** Decode a string-literal body span (without quotes). *)

(** {1 Extraction} *)

module Extract : sig
  type kind =
    | Scalar  (** number / true / false — parse the span directly *)
    | Quoted of bool  (** string body; [true] = contains escapes *)
    | Nul  (** JSON null *)

  type 'a trie
  (** Wanted paths compiled to a key-matching trie with a payload per
      leaf. *)

  val compile : (string list * 'a) list -> 'a trie
  (** Each wanted path as its key list (["user"; "id"]). Raises
      [Invalid_argument] on duplicate or conflicting paths (a path that is
      both leaf and prefix). *)

  val leaves : 'a trie -> 'a list
  (** Payloads in compile order. *)

  val run :
    Bytes.t ->
    pos:int ->
    wanted:'a trie ->
    emit:('a -> kind -> int -> int -> unit) ->
    int
  (** Walk the object starting at [pos] (skipping leading whitespace),
      emitting the value span of every wanted path found, and return the
      position just after the object. Unmatched keys are skipped at byte
      level without materializing anything. Raises the typed
      [Raw_storage.Scan_errors.Error] on malformed JSON. *)

  val iter_array_objects :
    Bytes.t -> pos:int -> path:string list -> f:(int -> unit) -> int
  (** Flattening support (paper §4.1: nested fields may be kept nested or
      flattened per query): locate the array at [path] inside the object at
      [pos] and call [f] with the byte offset of every element that is
      itself an object (other elements are skipped); returns the position
      after the whole row object. A missing path or non-array value yields
      no calls. *)
end

(** {1 Rows} *)

val count_rows : Mmap_file.t -> int
(** Non-empty lines. *)

val row_starts : Mmap_file.t -> int array
(** Byte offset of each non-empty line — the positional map's contents. *)
