(** FWB — fixed-width binary: the paper's "custom binary format" (§4.2).

    Every field is serialized from its C representation at a fixed width
    (ints and floats: 8 bytes little-endian; bools: 1 byte), so the byte
    location of any data element is computed, not discovered:
    [row * row_size + field_offset]. A JIT access path bakes these constants
    into the scan kernel; no positional map is ever needed. Strings are not
    representable (by design — the format exists to model deterministic
    layouts such as FITS). *)

open Raw_vector
open Raw_storage

type layout

val layout : Dtype.t array -> layout
(** Raises [Invalid_argument] if any column is [String]. *)

val row_size : layout -> int
val field_offset : layout -> int -> int
val dtypes : layout -> Dtype.t array
val n_fields : layout -> int

val offset_of : layout -> row:int -> field:int -> int
(** The paper's formula: [row * row_size + field_offset]. *)

val n_rows : layout -> Mmap_file.t -> int
(** [file_length / row_size]; raises the typed
    [Raw_storage.Scan_errors.Error] (cause ["fwb: trailing bytes"]) if the
    file size is not a whole number of rows — a truncated write or short
    read, i.e. malformed user data rather than a programmer error. *)

val n_rows_floor : layout -> Mmap_file.t -> int
(** Whole rows only: [file_length / row_size] rounded down. What the
    [Skip_row]/[Null_fill] policies scan of a ragged file. *)

val trailing_bytes : layout -> Mmap_file.t -> int
(** [file_length mod row_size] — nonzero iff the file is ragged. *)

val row_ranges : layout -> Mmap_file.t -> n:int -> (int * int) list
(** Morsel boundary finder: at most [n] contiguous, non-empty [(lo, hi)] row
    ranges partitioning [[0, n_rows)] — pure arithmetic, rows are fixed
    width. The empty file yields [[]]. *)

(** {1 Reading}

    Typed point readers over a memory-mapped file; each accounts its access
    to the simulated page cache. *)

val read_int : Mmap_file.t -> int -> int
val read_float : Mmap_file.t -> int -> float
val read_bool : Mmap_file.t -> int -> bool

(** {1 Writing} *)

val write_file : path:string -> layout -> Value.t array Seq.t -> unit
(** Each array is one row matching the layout. Raises on arity or type
    mismatch. *)

val generate :
  path:string -> n_rows:int -> dtypes:Dtype.t array -> seed:int -> unit -> unit
(** Same value distributions as {!Csv.generate} and, for equal seeds and
    dtypes, the {e same data} — the paper generates its CSV and binary files
    from one dataset. *)

val row_values :
  path:string -> n_rows:int -> dtypes:Dtype.t array -> seed:int ->
  Value.t array Seq.t
(** The deterministic value stream used by {!generate} (exposed so tests and
    CSV generation can share it). [path] is unused except for API symmetry. *)
