open Raw_vector
open Raw_storage

(* ---------- generation ---------- *)

let write_file ~path ?(sep = ',') ~header ~rows () =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let sep_s = String.make 1 sep in
      let put fields = output_string oc (String.concat sep_s fields); output_char oc '\n' in
      (match header with Some h -> put h | None -> ());
      Seq.iter put rows)

let render_value (v : Value.t) =
  match v with
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.3f" f
  | Bool b -> if b then "1" else "0"
  | String s -> s
  | Null -> ""

let generate ~path ?(sep = ',') ~n_rows ~dtypes ~seed () =
  let st = Random.State.make [| seed |] in
  let words = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |] in
  let render dt =
    match (dt : Dtype.t) with
    | Int -> string_of_int (Random.State.int st 1_000_000_000)
    | Float -> Printf.sprintf "%.3f" (Random.State.float st 1e9)
    | Bool -> if Random.State.bool st then "1" else "0"
    | String ->
      words.(Random.State.int st (Array.length words))
      ^ string_of_int (Random.State.int st 1000)
  in
  let rows =
    Seq.init n_rows (fun _ -> Array.to_list (Array.map render dtypes))
  in
  write_file ~path ~sep ~header:None ~rows ()

(* ---------- fast parsers ----------

   Decode failures raise the typed Scan_errors.Error with the field's own
   byte offset; scan kernels catch it and re-attribute to (row offset,
   source column) before recording or re-raising under the active error
   policy. Malformed data is user input, not a programmer error, so none
   of these paths use failwith/assert. *)

(* copy-accounting sites, precomputed once so the profiled path does not
   allocate; each Prof_gate.copy is one domain-local read + branch when
   profiling is off. "csv.field" charges string materialization of parsed
   fields; "csv.value" charges the slow-path numeric/bool decoders that
   fall back to an intermediate string. *)
let site_field = Prof_gate.site "csv.field"
let site_value = Prof_gate.site "csv.value"

let bad_int ~pos = Scan_errors.fail ~offset:pos ~field:(-1) ~cause:"bad int"
let bad_float ~pos = Scan_errors.fail ~offset:pos ~field:(-1) ~cause:"bad float"
let bad_bool ~pos = Scan_errors.fail ~offset:pos ~field:(-1) ~cause:"bad bool"

let parse_int buf pos len =
  if len = 0 then bad_int ~pos;
  let stop = pos + len in
  let neg = Bytes.unsafe_get buf pos = '-' in
  let i0 = if neg || Bytes.unsafe_get buf pos = '+' then pos + 1 else pos in
  if i0 >= stop then bad_int ~pos;
  let acc = ref 0 in
  for i = i0 to stop - 1 do
    let c = Char.code (Bytes.unsafe_get buf i) - Char.code '0' in
    if c < 0 || c > 9 then bad_int ~pos;
    acc := (!acc * 10) + c
  done;
  if neg then - !acc else !acc

let pow10 = [| 1.; 1e1; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10; 1e11;
               1e12; 1e13; 1e14; 1e15 |]

let parse_float_slow buf pos len =
  Prof_gate.copy site_value len;
  match float_of_string_opt (Bytes.sub_string buf pos len) with
  | Some f -> f
  | None -> bad_float ~pos

let parse_float buf pos len =
  if len = 0 then bad_float ~pos;
  let stop = pos + len in
  let neg = Bytes.unsafe_get buf pos = '-' in
  let i = ref (if neg || Bytes.unsafe_get buf pos = '+' then pos + 1 else pos) in
  let mantissa = ref 0. in
  let ok = ref (!i < stop) in
  (* integer part *)
  let continue_ = ref true in
  while !continue_ && !i < stop do
    let c = Bytes.unsafe_get buf !i in
    if c >= '0' && c <= '9' then begin
      mantissa := (!mantissa *. 10.) +. float_of_int (Char.code c - 48);
      incr i
    end
    else continue_ := false
  done;
  (* fraction *)
  if !i < stop && Bytes.unsafe_get buf !i = '.' then begin
    incr i;
    let frac_digits = ref 0 in
    let continue_ = ref true in
    while !continue_ && !i < stop do
      let c = Bytes.unsafe_get buf !i in
      if c >= '0' && c <= '9' then begin
        mantissa := (!mantissa *. 10.) +. float_of_int (Char.code c - 48);
        incr frac_digits;
        incr i
      end
      else continue_ := false
    done;
    if !frac_digits < Array.length pow10 then
      mantissa := !mantissa /. pow10.(!frac_digits)
    else ok := false
  end;
  (* exponent or anything unexpected: fall back *)
  if not !ok || !i < stop then parse_float_slow buf pos len
  else if neg then -. !mantissa
  else !mantissa

let parse_bool buf pos len =
  if len = 1 then
    match Bytes.get buf pos with
    | '1' | 't' | 'T' -> true
    | '0' | 'f' | 'F' -> false
    | _ -> bad_bool ~pos
  else begin
    Prof_gate.copy site_value len;
    match String.lowercase_ascii (Bytes.sub_string buf pos len) with
    | "true" -> true
    | "false" -> false
    | _ -> bad_bool ~pos
  end

let parse_string buf pos len =
  Prof_gate.copy site_field len;
  Bytes.sub_string buf pos len

(* ---------- navigation ---------- *)

module Cursor = struct
  type t = {
    file : Mmap_file.t;
    buf : Bytes.t;
    len : int;
    sep : char;
    mutable pos : int;
  }

  let create ?(sep = ',') ?(pos = 0) ?limit file =
    let len =
      match limit with
      | Some l -> min l (Mmap_file.length file)
      | None -> Mmap_file.length file
    in
    { file; buf = Mmap_file.bytes file; len; sep; pos }

  let file t = t.file
  let sep t = t.sep
  let pos t = t.pos
  let seek t p = t.pos <- p
  let at_eof t = t.pos >= t.len

  (* A field ends at the separator, at a line terminator ('\r' of a CRLF
     ending or a bare '\n'), or at EOF. At a terminator or EOF the field is
     empty and the cursor does not move — this is how an empty final field
     ("a,b,") parses, with [skip_line] consuming the terminator. *)
  let next_field t =
    let start = t.pos in
    let sep = t.sep in
    let i = ref t.pos in
    let continue_ = ref true in
    while !continue_ && !i < t.len do
      let c = Bytes.unsafe_get t.buf !i in
      if c = sep || c = '\n' || c = '\r' then continue_ := false else incr i
    done;
    let stop = !i in
    if stop > start || stop < t.len then
      Mmap_file.touch t.file start (stop - start + 1);
    (* advance past the separator, stay on the line terminator / EOF *)
    if stop < t.len && Bytes.unsafe_get t.buf stop = sep then t.pos <- stop + 1
    else t.pos <- stop;
    (start, stop - start)

  (* allocation-free variant of [next_field] for fields we never parse *)
  let skip_field t =
    let start = t.pos in
    let sep = t.sep in
    let i = ref t.pos in
    let continue_ = ref true in
    while !continue_ && !i < t.len do
      let c = Bytes.unsafe_get t.buf !i in
      if c = sep || c = '\n' || c = '\r' then continue_ := false else incr i
    done;
    let stop = !i in
    if stop > start || stop < t.len then
      Mmap_file.touch t.file start (stop - start + 1);
    if stop < t.len && Bytes.unsafe_get t.buf stop = sep then t.pos <- stop + 1
    else t.pos <- stop

  let skip_fields t n = for _ = 1 to n do skip_field t done

  let at_end_of_line t =
    t.pos >= t.len
    ||
    let c = Bytes.unsafe_get t.buf t.pos in
    c = '\n' || c = '\r'

  let skip_line t =
    let start = t.pos in
    let i = ref t.pos in
    let continue_ = ref true in
    while !continue_ && !i < t.len do
      if Bytes.unsafe_get t.buf !i = '\n' then continue_ := false else incr i
    done;
    t.pos <- min (!i + 1) t.len;
    Mmap_file.touch t.file start (t.pos - start)
end

let count_rows file =
  let buf = Mmap_file.bytes file in
  let len = Mmap_file.length file in
  let n = ref 0 in
  for i = 0 to len - 1 do
    if Bytes.unsafe_get buf i = '\n' then incr n
  done;
  if len > 0 && Bytes.get buf (len - 1) <> '\n' then incr n;
  !n

(* ---------- morsels ---------- *)

(* Row-aligned byte ranges for a morsel-driven parallel scan: cut the file
   into ~[n] equal spans, then push each cut forward to just past the next
   newline so every morsel holds whole rows. The boundary probe reads raw
   bytes without page accounting — it inspects O(n) positions, not the file.
   Ranges are non-empty, ordered, and partition [0, length). A file of fewer
   rows than [n] yields fewer ranges. *)
let row_aligned_ranges file ~n =
  let len = Mmap_file.length file in
  let buf = Mmap_file.bytes file in
  if len = 0 then []
  else if n <= 1 then [ (0, len) ]
  else begin
    let target = (len + n - 1) / n in
    let rec go start acc =
      if start >= len then List.rev acc
      else begin
        let cut = start + target in
        if cut >= len then List.rev ((start, len) :: acc)
        else begin
          let i = ref cut in
          while !i < len && Bytes.unsafe_get buf !i <> '\n' do incr i done;
          let stop = min (!i + 1) len in
          go stop ((start, stop) :: acc)
        end
      end
    in
    go 0 []
  end
