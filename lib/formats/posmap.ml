type t = {
  tracked : int array; (* ascending *)
  pos : int array array; (* pos.(k) = offsets of tracked.(k), length n_rows *)
  len : int array array;
  n_rows : int;
}

let tracked t = t.tracked
let n_rows t = t.n_rows

let slot t col =
  let rec go i =
    if i >= Array.length t.tracked then None
    else if t.tracked.(i) = col then Some i
    else if t.tracked.(i) > col then None
    else go (i + 1)
  in
  go 0

let is_tracked t col = Option.is_some (slot t col)

let positions t col =
  match slot t col with
  | Some k -> t.pos.(k)
  | None -> invalid_arg (Printf.sprintf "Posmap.positions: column %d untracked" col)

let lengths t col =
  match slot t col with
  | Some k -> Some t.len.(k)
  | None -> None

let position t ~row ~col = (positions t col).(row)

(* Heap footprint estimate for memory-budget accounting: one word per
   recorded position and length. *)
let byte_size t =
  let words a2 = Array.fold_left (fun acc a -> acc + Array.length a) 0 a2 in
  8 * (words t.pos + words t.len + Array.length t.tracked)

let nearest_at_or_before t col =
  let best = ref None in
  Array.iteri
    (fun k c -> if c <= col then best := Some (c, t.pos.(k)))
    t.tracked;
  !best

(* Stitch per-morsel segments (in row order) into one map. Positions are
   absolute byte offsets, so no shifting is needed — morsel workers record
   against the whole file. *)
let concat = function
  | [] -> invalid_arg "Posmap.concat: empty list"
  | [ seg ] -> seg
  | first :: _ as segs ->
    List.iter
      (fun s ->
        if s.tracked <> first.tracked then
          invalid_arg "Posmap.concat: segments track different columns")
      segs;
    (* raw id (declared in Raw_obs.Metrics): this layer sits below obs *)
    Raw_storage.Io_stats.add "posmap.segments_merged" (List.length segs);
    let n_tracked = Array.length first.tracked in
    {
      tracked = first.tracked;
      pos =
        Array.init n_tracked (fun k ->
            Array.concat (List.map (fun s -> s.pos.(k)) segs));
      len =
        Array.init n_tracked (fun k ->
            Array.concat (List.map (fun s -> s.len.(k)) segs));
      n_rows = List.fold_left (fun acc s -> acc + s.n_rows) 0 segs;
    }

let every_k ~k ~n_cols =
  if k <= 0 then invalid_arg "Posmap.every_k: k must be positive";
  let rec go c acc = if c >= n_cols then List.rev acc else go (c + k) (c :: acc) in
  go 0 []

module Build = struct
  type map = t

  type t = {
    tracked : int array;
    pos_bufs : Buffer_int.t array;
    len_bufs : Buffer_int.t array;
    mutable in_row : int; (* how many tracked cols recorded in current row *)
  }

  let create ~tracked =
    let tracked =
      List.sort_uniq Stdlib.compare tracked |> Array.of_list
    in
    {
      tracked;
      pos_bufs = Array.map (fun _ -> Buffer_int.create ()) tracked;
      len_bufs = Array.map (fun _ -> Buffer_int.create ()) tracked;
      in_row = 0;
    }

  let tracked t = t.tracked

  let record t ~col ~pos ~len =
    let k = t.in_row in
    if k >= Array.length t.tracked || t.tracked.(k) <> col then
      invalid_arg
        (Printf.sprintf "Posmap.Build.record: column %d out of order" col);
    Buffer_int.add t.pos_bufs.(k) pos;
    Buffer_int.add t.len_bufs.(k) len;
    t.in_row <- k + 1

  let end_row t =
    if t.in_row <> Array.length t.tracked then
      invalid_arg "Posmap.Build.end_row: missing tracked columns";
    t.in_row <- 0

  let abort_row t =
    for k = 0 to t.in_row - 1 do
      Buffer_int.truncate t.pos_bufs.(k) (Buffer_int.length t.pos_bufs.(k) - 1);
      Buffer_int.truncate t.len_bufs.(k) (Buffer_int.length t.len_bufs.(k) - 1)
    done;
    t.in_row <- 0

  let finish t =
    if t.in_row <> 0 then invalid_arg "Posmap.Build.finish: unfinished row";
    let pos = Array.map Buffer_int.contents t.pos_bufs in
    let len = Array.map Buffer_int.contents t.len_bufs in
    let n_rows = if Array.length pos = 0 then 0 else Array.length pos.(0) in
    Raw_storage.Io_stats.add "posmap.entries"
      (Array.fold_left (fun acc p -> acc + Array.length p) 0 pos);
    { tracked = t.tracked; pos; len; n_rows }
end
