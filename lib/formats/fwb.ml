open Raw_vector
open Raw_storage

type layout = {
  dtypes : Dtype.t array;
  offsets : int array;
  row_size : int;
}

let layout dtypes =
  let n = Array.length dtypes in
  let offsets = Array.make n 0 in
  let off = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !off;
    match Dtype.fixed_width dtypes.(i) with
    | Some w -> off := !off + w
    | None ->
      invalid_arg
        (Printf.sprintf "Fwb.layout: field %d has variable-width type %s" i
           (Dtype.to_string dtypes.(i)))
  done;
  { dtypes; offsets; row_size = !off }

let row_size l = l.row_size
let field_offset l i = l.offsets.(i)
let dtypes l = l.dtypes
let n_fields l = Array.length l.dtypes

let offset_of l ~row ~field = (row * l.row_size) + l.offsets.(field)

let n_rows_floor l file =
  let len = Mmap_file.length file in
  if l.row_size = 0 then 0 else len / l.row_size

let trailing_bytes l file =
  let len = Mmap_file.length file in
  if l.row_size = 0 then 0 else len mod l.row_size

let n_rows l file =
  let len = Mmap_file.length file in
  if l.row_size = 0 then 0
  else begin
    (* a ragged length is malformed user data (e.g. a truncated write or a
       short read), not a programmer error: raise the typed scan error so
       policies can degrade to [n_rows_floor] whole rows *)
    if len mod l.row_size <> 0 then
      Scan_errors.fail
        ~offset:(len - (len mod l.row_size))
        ~field:(-1) ~cause:"fwb: trailing bytes";
    len / l.row_size
  end

(* Morsel boundary finder: FWB rows are fixed-width, so row-aligned morsels
   are pure arithmetic — at most [n] contiguous, non-empty [(lo, hi)] row
   ranges partitioning [0, n_rows). *)
let row_ranges l file ~n =
  let rows = n_rows l file in
  if rows = 0 then []
  else if n <= 1 then [ (0, rows) ]
  else begin
    let per = (rows + n - 1) / n in
    let rec go lo acc =
      if lo >= rows then List.rev acc
      else begin
        let hi = min (lo + per) rows in
        go hi ((lo, hi) :: acc)
      end
    in
    go 0 []
  end

let read_int file pos =
  Mmap_file.touch file pos 8;
  Int64.to_int (Bytes.get_int64_le (Mmap_file.bytes file) pos)

let read_float file pos =
  Mmap_file.touch file pos 8;
  Int64.float_of_bits (Bytes.get_int64_le (Mmap_file.bytes file) pos)

let read_bool file pos =
  Mmap_file.touch file pos 1;
  Bytes.get (Mmap_file.bytes file) pos <> '\000'

let write_field buf off (dt : Dtype.t) (v : Value.t) =
  match dt, v with
  | Int, Int x -> Bytes.set_int64_le buf off (Int64.of_int x)
  | Float, Float x -> Bytes.set_int64_le buf off (Int64.bits_of_float x)
  | Float, Int x ->
    Bytes.set_int64_le buf off (Int64.bits_of_float (float_of_int x))
  | Bool, Bool x -> Bytes.set buf off (if x then '\001' else '\000')
  | _, _ ->
    invalid_arg
      (Printf.sprintf "Fwb.write_file: %s field given %s" (Dtype.to_string dt)
         (Value.to_string v))

let write_file ~path l rows =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Bytes.create l.row_size in
      Seq.iter
        (fun row ->
          if Array.length row <> n_fields l then
            invalid_arg "Fwb.write_file: row arity mismatch";
          Array.iteri (fun i v -> write_field buf l.offsets.(i) l.dtypes.(i) v) row;
          output_bytes oc buf)
        rows)

let row_values ~path:_ ~n_rows ~dtypes ~seed =
  (* Mirrors Csv.generate's distributions so CSV and FWB files built with the
     same seed hold the same logical data. Strings are excluded upstream. *)
  fun () ->
    let st = Random.State.make [| seed |] in
    let words = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" |] in
    let gen dt : Value.t =
      match (dt : Dtype.t) with
      | Int -> Int (Random.State.int st 1_000_000_000)
      | Float ->
        (* round to 3 decimals like the CSV rendering, so both formats agree *)
        let x = Random.State.float st 1e9 in
        Float (Float.of_string (Printf.sprintf "%.3f" x))
      | Bool -> Bool (Random.State.bool st)
      | String ->
        String
          (words.(Random.State.int st (Array.length words))
          ^ string_of_int (Random.State.int st 1000))
    in
    let rec next i () =
      if i >= n_rows then Seq.Nil
      else Seq.Cons (Array.map gen dtypes, next (i + 1))
    in
    next 0 ()

let generate ~path ~n_rows ~dtypes ~seed () =
  write_file ~path (layout dtypes) (row_values ~path ~n_rows ~dtypes ~seed)
