(** Growable int buffers (positional maps store millions of offsets; this
    avoids boxing and intermediate lists). *)

type t

val create : ?capacity:int -> unit -> t
val add : t -> int -> unit
val length : t -> int
val get : t -> int -> int
val contents : t -> int array
val clear : t -> unit

val truncate : t -> int -> unit
(** [truncate t n] drops entries from the end until [length t = n]. Raises
    [Invalid_argument] if [n] is negative or exceeds the current length.
    Used to roll back a partially recorded row when a scan under
    [Skip_row] abandons it. *)
