(** CSV: the paper's representative textual format (§4.2).

    Field locations are data-dependent — column N of each row is found only
    by tokenizing — which is exactly why positional maps ({!Posmap}) exist.
    This module provides the byte-level machinery every CSV access path
    builds on: a navigation cursor over a memory-mapped file, fast typed
    field parsers (the paper's "custom version of atoi"), and a generator
    for the synthetic workloads. *)

open Raw_vector
open Raw_storage

(** {1 Generation} *)

val write_file : path:string -> ?sep:char -> header:string list option ->
  rows:string list Seq.t -> unit -> unit
(** Writes rows of pre-rendered fields. *)

val generate :
  path:string ->
  ?sep:char ->
  n_rows:int ->
  dtypes:Dtype.t array ->
  seed:int ->
  unit ->
  unit
(** Deterministic synthetic file: integers uniform in [0, 10^9) (as in the
    paper), floats uniform in [0, 10^9) with 3 decimals, bools, and short
    strings. *)

val render_value : Value.t -> string

(** {1 Fast field parsers}

    Each parses the byte range [pos, pos+len) of [buf]; they are the
    data-type conversion functions a JIT access path bakes into the scan
    operator. Malformed input raises the typed
    [Raw_storage.Scan_errors.Error] carrying the field's byte offset, so
    scan kernels can apply the active error policy; [parse_float] falls
    back to [float_of_string] for unusual syntax. *)

val parse_int : Bytes.t -> int -> int -> int
val parse_float : Bytes.t -> int -> int -> float
val parse_bool : Bytes.t -> int -> int -> bool
val parse_string : Bytes.t -> int -> int -> string

(** {1 Navigation} *)

module Cursor : sig
  (** A byte cursor over a memory-mapped CSV file. All reads are accounted
      to the file's simulated page cache. *)

  type t

  val create : ?sep:char -> ?pos:int -> ?limit:int -> Mmap_file.t -> t
  (** Positioned at [pos] (default 0). [limit] bounds the cursor to the byte
      range [[pos, limit)] — {!at_eof} holds at [limit] — so a morsel worker
      can scan its slice of the file with the standard row loop. *)

  val file : t -> Mmap_file.t
  val sep : t -> char
  val pos : t -> int
  val seek : t -> int -> unit
  val at_eof : t -> bool

  val next_field : t -> int * int
  (** [(start, len)] of the field beginning at the cursor. Advances past the
      trailing separator if there is one, otherwise leaves the cursor on the
      line terminator (['\n'], or the ['\r'] of a CRLF ending) / EOF. At a
      terminator or EOF the field is empty ([len = 0]) and the cursor does
      not move — an empty final field ("a,b,") parses as [""]; the caller's
      [skip_line] consumes the terminator between rows. *)

  val skip_field : t -> unit
  (** Like {!next_field} without returning the span (cheaper: no length
      bookkeeping by callers). *)

  val skip_fields : t -> int -> unit
  val at_end_of_line : t -> bool

  val skip_line : t -> unit
  (** Advance past the next ['\n'] (or to EOF). *)
end

val count_rows : Mmap_file.t -> int
(** Number of newline-terminated rows (a final unterminated row counts). *)

val row_aligned_ranges : Mmap_file.t -> n:int -> (int * int) list
(** [row_aligned_ranges file ~n] cuts the file into at most [n] byte ranges
    [(start, stop)], each a whole number of rows (cuts advance to just past
    the next newline). Ranges are non-empty and partition [[0, length)];
    the empty file yields [[]]. The morsel boundary finder for parallel CSV
    scans. *)
