(* See file_id.mli. The identity is a point-in-time stamp: caches keyed
   by it go stale exactly when a re-stat disagrees, which covers
   in-place rewrites (mtime/size), atomic rename-replace (inode), and
   cross-filesystem moves (device). *)

type t = { dev : int; ino : int; mtime : float; size : int }

let of_stats (st : Unix.stats) =
  { dev = st.st_dev; ino = st.st_ino; mtime = st.st_mtime; size = st.st_size }

let stat path =
  match Unix.stat path with
  | st -> Some (of_stats st)
  | exception Unix.Unix_error (_, _, _) -> None

let equal a b =
  a.dev = b.dev && a.ino = b.ino && a.mtime = b.mtime && a.size = b.size

let to_string t =
  Printf.sprintf "%d:%d:%h:%d" t.dev t.ino t.mtime t.size
