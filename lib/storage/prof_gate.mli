(** Ambient switch for per-query resource profiling.

    Domain-local, default off. The executor raises the gate for the
    query's duration when {!Config.profile} is set; morsel workers
    re-install the coordinator's value at spawn (DLS is not inherited).
    Format kernels and buffer builders call {!copy} unconditionally at
    every intermediate-copy site — the disabled cost is a single DLS
    read plus a branch, asserted at ~ns scale by bench e28, so the
    instrumentation can stay in the hot paths permanently. *)

val on : unit -> bool
(** Is profiling enabled on this domain right now? *)

val set : bool -> unit
(** Set this domain's gate (workers mirror the coordinator's value). *)

val with_gate : bool -> (unit -> 'a) -> 'a
(** Run [f] with the gate forced to the given value, restoring the
    previous value on exit (including exceptional exit). *)

type site
(** A named copy site with its counter key precomputed, so the enabled
    path allocates nothing per call. Declare sites at module init:
    [let s = Prof_gate.site "csv.field"]. *)

val site : string -> site
(** [site name] names an intermediate-copy site; bytes reported against
    it land in the [bytes.copied.<name>] counter. *)

val site_key : site -> string
(** The full [Io_stats] counter key ("bytes.copied." ^ name). *)

val copy : site -> int -> unit
(** [copy s n] charges [n] bytes to [s] when the gate is up; a no-op
    (one DLS read + branch) when it is down. *)
