type reason = Deadline | User

exception Stop of reason

type t = {
  active : bool;
  deadline : float; (* absolute Timing.now () instant; infinity = none *)
  tripped : reason option Atomic.t;
  checks_left : int Atomic.t; (* testing hook; min_int = disabled *)
}

let never =
  {
    active = false;
    deadline = infinity;
    tripped = Atomic.make None;
    checks_left = Atomic.make min_int;
  }

let create ?deadline_seconds ?trip_after_checks () =
  let deadline =
    match deadline_seconds with
    | Some s -> Timing.now () +. s
    | None -> infinity
  in
  {
    active = true;
    deadline;
    tripped = Atomic.make None;
    checks_left =
      Atomic.make (match trip_after_checks with Some n -> n | None -> min_int);
  }

let active t = t.active

let cancel t =
  if t.active then ignore (Atomic.compare_and_set t.tripped None (Some User))

let triggered t =
  if not t.active then None
  else
    match Atomic.get t.tripped with
    | Some _ as r -> r
    | None ->
      (* the testing hook charges one check per call, in any domain *)
      if Atomic.get t.checks_left <> min_int && Atomic.fetch_and_add t.checks_left (-1) <= 0
      then begin
        ignore (Atomic.compare_and_set t.tripped None (Some User));
        Atomic.get t.tripped
      end
      else if t.deadline < Timing.now () then begin
        ignore (Atomic.compare_and_set t.tripped None (Some Deadline));
        Atomic.get t.tripped
      end
      else None

let check t =
  match triggered t with None -> () | Some r -> raise (Stop r)

let noop = fun () -> ()

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let batch_checker ?(granularity = 512) t =
  if not t.active then noop
  else begin
    let g = pow2_at_least (max granularity 1) 1 in
    let mask = g - 1 in
    let n = ref 0 in
    fun () ->
      incr n;
      if !n land mask = 0 then begin
        Io_stats.add "scan.rows_scanned" g;
        check t
      end
  end

(* ---------- ambient token ---------- *)

let key = Domain.DLS.new_key (fun () -> never)
let current () = Domain.DLS.get key
let set_current t = Domain.DLS.set key t

let with_current t f =
  let prev = current () in
  set_current t;
  let r = try Ok (f ()) with e -> Error e in
  set_current prev;
  r
