type progress = {
  rows_scanned : int;
  io_seconds : float;
  compile_seconds : float;
  elapsed_seconds : float;
}

exception Deadline_exceeded of progress
exception Cancelled of progress
exception Overloaded of { active : int; limit : int }
exception Invalid_config of string

let pp_progress ppf p =
  Format.fprintf ppf
    "%d row(s) scanned, %.4fs io(sim), %.4fs compile(sim), %.4fs elapsed"
    p.rows_scanned p.io_seconds p.compile_seconds p.elapsed_seconds

let to_string = function
  | Deadline_exceeded p ->
    Some
      (Format.asprintf "deadline exceeded after %a" pp_progress p)
  | Cancelled p -> Some (Format.asprintf "query cancelled after %a" pp_progress p)
  | Overloaded { active; limit } ->
    Some
      (Printf.sprintf "overloaded: %d quer%s already admitted (limit %d)"
         active
         (if active = 1 then "y" else "ies")
         limit)
  | Invalid_config msg -> Some ("invalid configuration: " ^ msg)
  | _ -> None

let () = Printexc.register_printer to_string
