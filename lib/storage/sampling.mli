(** Deterministic seeded sampling orders.

    The online-aggregation path visits a file's morsels in a seeded
    pseudo-random order so that any prefix of the visit sequence is a
    simple random sample (without replacement) of the morsels. The order
    is a pure function of [(seed, n)] — it does not depend on parallelism,
    timing, or any global state — which is what makes approximate answers
    reproducible and identical at every parallelism level. *)

val permutation : seed:int -> int -> int array
(** [permutation ~seed n] is a permutation of [0 .. n-1]: each index
    appears exactly once. Deterministic in [(seed, n)]; [n = 0] yields the
    empty array. Raises [Invalid_argument] on negative [n]. *)
