(** Per-scan error policies and domain-local error accounting.

    Raw files arrive malformed: truncated mid-row, ragged, with bad numeric
    literals or corrupt record headers. A loader would reject such input
    up front; an in-situ engine meets it mid-query and must degrade
    gracefully. Every scan kernel runs under a {!policy}:

    - {!Fail_fast} — abort the query on the first malformed value, raising
      {!Error} with the byte offset, field and cause. This is the default
      and costs nothing on clean data (the kernels' fast paths are
      unchanged; the typed error is raised from the same checks that
      always guarded decoding).
    - {!Skip_row} — drop any row with a malformed field. Row identity is
      schema-wide: a row is dropped iff {e any} schema field fails to
      decode, so the surviving row set does not depend on which columns a
      particular query touches, and positional maps / cached row counts
      stay consistent across queries.
    - {!Null_fill} — keep every physical row; malformed fields decode to
      NULL. Structurally unreachable records (e.g. a corrupt HEP event
      header) still cannot be enumerated and are skipped like {!Skip_row}.

    Errors are recorded into domain-local state (like {!Io_stats}, so
    morsel workers never contend); {!Morsel.map_domains} merges worker
    snapshots after join and {!Executor.run} surfaces the per-query delta
    as [report.errors]: total count, per-cause counts, and the first
    {!max_samples} samples by byte offset. *)

type policy = Fail_fast | Skip_row | Null_fill

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type sample = {
  offset : int;  (** byte offset of the row (or record) containing the error *)
  field : int;  (** source-column / field ordinal; [-1] for row-level errors *)
  cause : string;  (** short human cause, e.g. ["bad int"] *)
}

exception Error of sample
(** The typed scan error. Under {!Fail_fast} it propagates to the caller;
    under the other policies kernels catch it, {!record} it, and recover. *)

val fail : offset:int -> field:int -> cause:string -> 'a
(** [fail ~offset ~field ~cause] raises {!Error}. *)

val max_samples : int
(** How many samples a snapshot retains (the first N by byte offset). *)

val record : offset:int -> field:int -> cause:string -> unit
(** Count an error (and retain it as a sample if fewer than
    {!max_samples} are held) in this domain's accounting. *)

val record_sample : sample -> unit

type snapshot = {
  total : int;
  by_cause : (string * int) list;  (** sorted by cause *)
  samples : sample list;  (** at most {!max_samples}, sorted by offset *)
}

val empty : snapshot
val is_empty : snapshot -> bool

val snapshot : unit -> snapshot
(** This domain's accumulated errors since the last {!reset}. *)

val reset : unit -> unit

val merge : snapshot -> unit
(** Fold a worker domain's snapshot into this domain's accounting.
    Deterministic: totals add, per-cause counts add, and the retained
    samples are the globally first {!max_samples} by (offset, field), so a
    morsel-parallel scan reports exactly what the sequential scan does. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
