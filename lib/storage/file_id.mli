(** File identity: the (device, inode, mtime, size) stamp of a raw file.

    Every cache derived from a raw file's bytes — positional maps, column
    shreds, loaded columns, and the PR-6 statement/result cache — is only
    valid for one version of that file. A [File_id.t] captured when the
    file is opened names that version: if a later {!stat} disagrees in any
    component, the file changed (in-place rewrite bumps mtime/size,
    rename-replace swaps the inode, a cross-filesystem move swaps the
    device) and everything keyed by the old stamp must be dropped.

    mtime granularity is filesystem-dependent (can be whole seconds), so
    same-second in-place rewrites that also preserve the byte count are
    indistinguishable; tests force distinct stamps via [Unix.utimes]. *)

type t = { dev : int; ino : int; mtime : float; size : int }

val of_stats : Unix.stats -> t

val stat : string -> t option
(** Current identity, or [None] if the file cannot be stat'ed (missing,
    permissions). Never raises. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Compact, injective-enough rendering for cache-key embedding (mtime is
    printed in hex float, so sub-second precision survives). *)
