(** Global named counters.

    A lightweight metrics registry: scan operators and caches bump counters
    (pages touched, fields parsed, conversions, cache hits...) and the
    benchmark harness snapshots them between queries.

    Counters are {b domain-local}: each domain sees (and mutates) its own
    table, so parallel morsel workers never race on shared state. A worker
    domain starts with an empty table; the coordinating domain collects each
    worker's {!snapshot} after join and folds it in with {!merge}. *)

val incr : string -> unit
val add : string -> int -> unit
val add_float : string -> float -> unit

val get : string -> int
(** Rounded to the nearest integer (counters accumulate as floats; merged
    per-domain deltas must not under-report by truncation). *)

val get_float : string -> float
(** Exact accumulated value. *)

val reset : string -> unit
val reset_all : unit -> unit

val snapshot : unit -> (string * float) list
(** This domain's counters, sorted by name; integer counters appear as
    floats. *)

val merge : (string * float) list -> unit
(** Add a snapshot (typically taken by a worker domain just before it
    finishes) into the calling domain's counters. *)

val pp_snapshot : Format.formatter -> unit -> unit
