(** Global named counters.

    A lightweight metrics registry: scan operators and caches bump counters
    (pages touched, fields parsed, conversions, cache hits...) and the
    benchmark harness snapshots them between queries.

    Counters are {b domain-local}: each domain sees (and mutates) its own
    table, so parallel morsel workers never race on shared state. A worker
    domain starts with an empty table; the coordinating domain collects each
    worker's {!snapshot} after join and folds it in with {!merge}. *)

val incr : string -> unit
val add : string -> int -> unit
val add_float : string -> float -> unit

val get : string -> int
(** Rounded to the nearest integer, {e at read time only}. Counters
    accumulate and merge as exact floats — integer bumps stay exact well
    past any realistic count, and fractional series (simulated seconds,
    histogram sums) keep full precision through arbitrarily many
    {!merge}s. Rounding on store would instead compound per-morsel
    truncation error; here [add_float 0.4] twice reads back as [1]
    ([0.8] rounded), never [0]. Use {!get_float} when the fraction
    matters. *)

val get_float : string -> float
(** Exact accumulated value. *)

val reset : string -> unit
val reset_all : unit -> unit

val snapshot : unit -> (string * float) list
(** This domain's counters, sorted by name; integer counters appear as
    floats. *)

val merge : (string * float) list -> unit
(** Add a snapshot (typically taken by a worker domain just before it
    finishes) into the calling domain's counters. *)

val pp_snapshot : Format.formatter -> unit -> unit
