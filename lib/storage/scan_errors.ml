(* Per-scan error policies and domain-local error accounting.

   Mirrors Io_stats: each domain accumulates into its own cell (no
   contention inside morsel workers); Morsel.map_domains merges worker
   snapshots back into the coordinator after join. Samples are kept
   sorted by (offset, field) and capped at [max_samples], so a parallel
   scan's merged report is byte-identical to the sequential one. *)

type policy = Fail_fast | Skip_row | Null_fill

let policy_to_string = function
  | Fail_fast -> "fail"
  | Skip_row -> "skip"
  | Null_fill -> "null"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fail" | "fail-fast" | "fail_fast" -> Some Fail_fast
  | "skip" | "skip-row" | "skip_row" -> Some Skip_row
  | "null" | "null-fill" | "null_fill" -> Some Null_fill
  | _ -> None

type sample = { offset : int; field : int; cause : string }

exception Error of sample

let fail ~offset ~field ~cause = raise (Error { offset; field; cause })
let max_samples = 8

type cell = {
  mutable total : int;
  by_cause : (string, int ref) Hashtbl.t;
  (* ascending by (offset, field); length <= max_samples *)
  mutable samples : sample list;
  mutable n_samples : int;
}

let new_cell () =
  { total = 0; by_cause = Hashtbl.create 8; samples = []; n_samples = 0 }

let key = Domain.DLS.new_key new_cell
let cell () = Domain.DLS.get key

let count c ~cause ~n =
  c.total <- c.total + n;
  match Hashtbl.find_opt c.by_cause cause with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace c.by_cause cause (ref n)

let sample_le a b =
  a.offset < b.offset || (a.offset = b.offset && a.field <= b.field)

(* insert keeping ascending (offset, field) order, then cap. Sequential
   scans record in offset order so this is O(1) appends in practice. *)
let add_sample c s =
  let rec ins = function
    | [] -> [ s ]
    | x :: _ as l when not (sample_le x s) -> s :: l
    | x :: tl -> x :: ins tl
  in
  if c.n_samples < max_samples then begin
    c.samples <- ins c.samples;
    c.n_samples <- c.n_samples + 1
  end
  else
    match List.rev c.samples with
    | last :: _ when not (sample_le last s) ->
      let rec cap n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl -> x :: cap (n - 1) tl
      in
      c.samples <- cap max_samples (ins c.samples)
    | _ -> ()

let record_sample s =
  let c = cell () in
  count c ~cause:s.cause ~n:1;
  add_sample c s

let record ~offset ~field ~cause = record_sample { offset; field; cause }

type snapshot = {
  total : int;
  by_cause : (string * int) list;
  samples : sample list;
}

let empty = { total = 0; by_cause = []; samples = [] }
let is_empty s = s.total = 0

let snapshot () =
  let c = cell () in
  {
    total = c.total;
    by_cause =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.by_cause []
      |> List.sort compare;
    samples = c.samples;
  }

let reset () =
  let c = cell () in
  c.total <- 0;
  Hashtbl.reset c.by_cause;
  c.samples <- [];
  c.n_samples <- 0

let merge (s : snapshot) =
  let c = cell () in
  List.iter (fun (cause, n) -> count c ~cause ~n) s.by_cause;
  List.iter (add_sample c) s.samples

let pp_snapshot ppf s =
  Format.fprintf ppf "@[<v>%d scan error(s)" s.total;
  List.iter
    (fun (cause, n) -> Format.fprintf ppf "@,  %6d  %s" n cause)
    s.by_cause;
  List.iter
    (fun x ->
      Format.fprintf ppf "@,  sample: offset %d%s: %s" x.offset
        (if x.field >= 0 then Printf.sprintf " field %d" x.field else "")
        x.cause)
    s.samples;
  Format.fprintf ppf "@]"
