type consumer = {
  name : string;
  priority : int;
  usage : unit -> int;
  shrink : need:int -> int;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  mutable consumers : consumer list; (* ascending priority *)
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then
    raise
      (Resource_error.Invalid_config
         (Printf.sprintf "memory budget must be positive (got %d bytes)"
            capacity_bytes));
  { capacity = capacity_bytes; mutex = Mutex.create (); consumers = [] }

let capacity t = t.capacity

let register t ~name ~priority ~usage ~shrink =
  Mutex.protect t.mutex (fun () ->
      let others = List.filter (fun c -> c.name <> name) t.consumers in
      t.consumers <-
        List.stable_sort
          (fun a b -> Stdlib.compare a.priority b.priority)
          ({ name; priority; usage; shrink } :: others))

let used_locked t =
  List.fold_left (fun acc c -> acc + c.usage ()) 0 t.consumers

let used t = Mutex.protect t.mutex (fun () -> used_locked t)

let reserve t ~bytes =
  bytes <= 0
  ||
  Mutex.protect t.mutex (fun () ->
      let need () = used_locked t + bytes - t.capacity in
      if need () <= 0 then true
      else begin
        (* shrink in priority order until the reservation fits *)
        List.iter
          (fun c ->
            let n = need () in
            if n > 0 then begin
              (* per-item eviction counts (gov.evictions.<consumer>) are the
                 shrink callback's job — it knows what an "item" is *)
              let freed = c.shrink ~need:n in
              if freed > 0 then Io_stats.add "gov.evicted_bytes" freed
            end)
          t.consumers;
        if need () <= 0 then true
        else begin
          Io_stats.incr "gov.reservation_failures";
          false
        end
      end)
