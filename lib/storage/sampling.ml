(* See sampling.mli. The generator is splitmix64: a counter-based PRNG
   with a single 64-bit word of state, chosen because its output for a
   given seed is a pure function of (seed, draw index) — no global state,
   no dependence on how the consuming loop is scheduled. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let permutation ~seed n =
  if n < 0 then invalid_arg "Sampling.permutation: negative size";
  let a = Array.init n Fun.id in
  let state = ref (Int64.of_int seed) in
  let next () =
    state := Int64.add !state golden_gamma;
    mix !state
  in
  (* Fisher-Yates over the identity: every permutation of [0, n) is
     reachable and the result depends only on (seed, n). Draws are taken
     as unsigned remainders; the modulo bias over 2^64 is far below
     anything a morsel-sampling order could observe. *)
  for i = n - 1 downto 1 do
    let j = Int64.to_int (Int64.unsigned_rem (next ()) (Int64.of_int (i + 1))) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
