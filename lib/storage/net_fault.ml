(* See net_fault.mli. The generator is the same avalanche mix as
   Mmap_file.Fault (splitmix-style over OCaml's 63-bit ints): state
   advances by a Weyl constant and each draw hashes the new state, so a
   stream is a pure function of its seed and no draw depends on wall
   clock, scheduling or Random. *)

type action =
  | Well_formed
  | Torn_write of float
  | Stall of float
  | Disconnect_mid_request
  | Disconnect_before_read
  | Garbage of string
  | Oversized of int
  | Wrong_shape of string

module Stream = struct
  type t = { mutable state : int }

  (* identical constants to Mmap_file.Fault.mix, kept local so the two
     modules stay independently readable *)
  let mix x =
    let x = x land max_int in
    let x = x lxor (x lsr 16) in
    let x = x * 0x7feb352d land max_int in
    let x = x lxor (x lsr 15) in
    let x = x * 0x846ca68b land max_int in
    x lxor (x lsr 16)

  let weyl = 0x1e3779b97f4a7c15 (* 63-bit golden-ratio Weyl increment *)

  let make ~seed = { state = mix (seed lxor 0x5deece66d) }

  let fork t ~label = { state = mix ((t.state * 0x1000193) + (label * 0x811c9dc5) + 1) }

  let next t =
    t.state <- (t.state + weyl) land max_int;
    mix t.state

  let float t = Stdlib.float_of_int (next t land 0xFFFFFFFF) /. 4294967296.0

  let int t ~bound =
    if bound <= 0 then invalid_arg "Net_fault.Stream.int: bound must be positive";
    next t mod bound

  let jitter t = 0.5 +. float t
end

type t = {
  seed : int;
  chaos_per_request : float;
  max_stall_seconds : float;
  oversize_bytes : int;
}

let make ?(seed = 0) ?(chaos_per_request = 0.5) ?(max_stall_seconds = 0.2)
    ?(oversize_bytes = 2 * 1024 * 1024) () =
  { seed; chaos_per_request; max_stall_seconds; oversize_bytes }

let from_env () =
  match Option.bind (Sys.getenv_opt "RAW_NET_FAULT_SEED") int_of_string_opt with
  | None -> None
  | Some seed ->
    let getf k d =
      Option.value ~default:d
        (Option.bind (Sys.getenv_opt k) float_of_string_opt)
    in
    let geti k d =
      Option.value ~default:d
        (Option.bind (Sys.getenv_opt k) int_of_string_opt)
    in
    Some
      {
        seed;
        chaos_per_request = getf "RAW_NET_FAULT_CHAOS" 0.5;
        max_stall_seconds = getf "RAW_NET_FAULT_STALL" 0.2;
        oversize_bytes = geti "RAW_NET_FAULT_OVERSIZE" (2 * 1024 * 1024);
      }

let stream t ~client = Stream.fork (Stream.make ~seed:t.seed) ~label:client

(* Fixed corpora: every entry is a protocol edge the server must answer
   (or survive) without ending the process. Garbage lines are raw bytes
   that must draw a code-2 parse answer; wrong-shape lines are valid JSON
   the dispatcher must refuse — including the duplicate-"id" document,
   where the parser keeps both pairs and [member] answers the first. *)
let garbage_corpus =
  [|
    "\x00\x01\x02\xff\xfe binary noise";
    "{\"op\": \"ping\""; (* unterminated object *)
    "SELECT 1 FROM t"; (* bare SQL, not JSON *)
    "}{";
    "\"";
    "{\"sql\": \"SELECT 1\"} trailing junk";
  |]

let wrong_shape_corpus =
  [|
    "42";
    "[\"not\", \"an\", \"object\"]";
    "\"just a string\"";
    "null";
    "{\"op\": \"unknown\"}";
    "{\"op\": 7}";
    "{\"sql\": 42}";
    "{}";
    "{\"id\": 1, \"id\": 2, \"op\": \"ping\"}";
  |]

let plan t s =
  if Stream.float s >= t.chaos_per_request then Well_formed
  else
    let stall () = Stream.float s *. t.max_stall_seconds in
    match Stream.int s ~bound:7 with
    | 0 -> Torn_write (stall ())
    | 1 -> Stall (stall ())
    | 2 -> Disconnect_mid_request
    | 3 -> Disconnect_before_read
    | 4 ->
      Garbage garbage_corpus.(Stream.int s ~bound:(Array.length garbage_corpus))
    | 5 ->
      (* at least one byte past any sane bound; the draw varies the
         overshoot so boundary arithmetic gets poked at many lengths *)
      Oversized (t.oversize_bytes + 1 + Stream.int s ~bound:4096)
    | _ ->
      Wrong_shape
        wrong_shape_corpus.(Stream.int s ~bound:(Array.length wrong_shape_corpus))
