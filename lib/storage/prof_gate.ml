(* The profiler's ambient on/off switch, domain-local like Io_stats so a
   morsel worker inherits nothing implicitly: the coordinator reads the
   gate before spawning and each worker re-installs it, exactly the
   discipline Cancel and Trace already follow. The disabled path of
   [copy] is one DLS read and a branch — no allocation, no lock — which
   is what lets the format kernels carry instrumentation unconditionally.

   [site] precomputes the full counter key at module-init time so the
   enabled path does not concatenate strings per copy either. *)

let key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let on () = Domain.DLS.get key
let set v = Domain.DLS.set key v

let with_gate v f =
  let prev = on () in
  set v;
  Fun.protect ~finally:(fun () -> set prev) f

type site = string

let site name = "bytes.copied." ^ name
let site_key s = s
let copy s n = if on () then Io_stats.add s n
