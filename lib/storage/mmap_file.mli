(** Memory-mapped raw files with simulated page-cache accounting.

    The paper memory-maps raw files and relies on the OS page cache; cold
    and warm runs differ only in whether pages are already resident. At
    laptop scale we cannot (and should not) drop the real OS cache, so this
    module loads the file into memory once and then *simulates* the page
    cache deterministically: scan operators declare the byte ranges they
    read via {!touch}; a first touch of a page is a fault charged with a
    configurable I/O latency, later touches are hits. {!drop_cache} makes
    the next run "cold".

    The simulated I/O seconds are reported alongside measured CPU time by
    the benchmark harness, reproducing the paper's "I/O masks the
    difference in the first query" effect without a 28 GB file. *)

module Config : sig
  type t = {
    page_size : int;  (** bytes per simulated page (default 64 KiB) *)
    io_seconds_per_page : float;
        (** charged per page fault (default 0.6 ms ≈ 100 MB/s disk) *)
    residency_capacity : int option;
        (** max resident pages; [None] = unbounded (default) *)
  }

  val default : t
end

(** Deterministic, seed-driven media-fault injection. Faults are applied
    once, when the file is opened: [truncate_pages] simulated short reads
    (whole pages dropped from the tail) and per-page byte flips with
    probability [flip_per_page], both derived from a pure hash of
    [(seed, page)] — no [Random] state, so the same seed corrupts the
    same bytes in every process and on every domain. When no [?fault] is
    passed explicitly, the environment is consulted ({!Fault.from_env}):
    [RAW_FAULT_SEED], [RAW_FAULT_FLIP] (probability per page),
    [RAW_FAULT_TRUNC] (pages), and [RAW_FAULT_ONLY] (only corrupt files
    whose name contains the given substring) — letting CI run the whole
    suite under injected faults without touching fixtures by hand. *)
module Fault : sig
  type t = {
    seed : int;
    flip_per_page : float;  (** probability a given page gets one byte flip *)
    truncate_pages : int;  (** pages removed from the end of the file *)
    only : string option;  (** substring filter on the file name *)
  }

  val make :
    ?seed:int ->
    ?flip_per_page:float ->
    ?truncate_pages:int ->
    ?only:string ->
    unit ->
    t

  val applies : t -> name:string -> bool
  val from_env : unit -> t option
end

type t

val open_file : ?config:Config.t -> ?fault:Fault.t -> string -> t
(** Reads the whole file. Raises [Sys_error] if unreadable. An explicit
    [?fault] overrides any environment-configured injection. *)

val of_bytes : ?config:Config.t -> ?fault:Fault.t -> name:string -> Bytes.t -> t
(** In-memory file, mainly for tests. When a fault applies, the stored
    contents are a corrupted {e copy}; the caller's buffer is untouched. *)

val injected_flips : t -> int
(** Byte flips the fault injector applied at open time. *)

val injected_truncated_bytes : t -> int
(** Bytes the fault injector removed from the tail at open time. *)

val name : t -> string
val length : t -> int

val bytes : t -> Bytes.t
(** The raw contents. Parsers read this directly (zero-copy) and are
    responsible for calling {!touch} on the ranges they consume. Treat as
    read-only. *)

val touch : t -> int -> int -> unit
(** [touch t pos len] records an access to bytes [pos, pos+len). Cheap when
    the range stays within the most recently touched page. Out-of-range
    positions are clamped. *)

val faults : t -> int
val hits : t -> int
val resident_pages : t -> int

(** {1 Concurrent-read views}

    [t] is not safe to {!touch} from several domains at once (the residency
    structures and counters are unsynchronized). A parallel scan gives each
    worker domain its own {!fork_view} — sharing the underlying bytes but
    owning a private copy of the residency state with zeroed counters — and
    the coordinator folds the views back with {!absorb} after joining. *)

val fork_view : t -> t
(** A view sharing the file contents and current page residency, with its
    own counters (zeroed) and residency copy. Only the forking domain may
    continue touching the original while views are live. *)

val absorb : into:t -> t -> unit
(** [absorb ~into view] adds the view's fault/hit counts into [into] and
    marks the view's resident pages resident there (bounded residency keeps
    [into]'s LRU recency for pages it already held). *)

val simulated_io_seconds : t -> float
(** [faults * io_seconds_per_page], accumulated since the last
    {!reset_counters}. *)

val drop_cache : t -> unit
(** Evict all resident pages (next run is cold). Also resets the counters. *)

val reset_counters : t -> unit
(** Zero the fault/hit counters but keep pages resident (start of a warm
    measurement). *)

val config : t -> Config.t
