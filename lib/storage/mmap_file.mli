(** Memory-mapped raw files with simulated page-cache accounting.

    The paper memory-maps raw files and relies on the OS page cache; cold
    and warm runs differ only in whether pages are already resident. At
    laptop scale we cannot (and should not) drop the real OS cache, so this
    module loads the file into memory once and then *simulates* the page
    cache deterministically: scan operators declare the byte ranges they
    read via {!touch}; a first touch of a page is a fault charged with a
    configurable I/O latency, later touches are hits. {!drop_cache} makes
    the next run "cold".

    The simulated I/O seconds are reported alongside measured CPU time by
    the benchmark harness, reproducing the paper's "I/O masks the
    difference in the first query" effect without a 28 GB file. *)

module Config : sig
  type t = {
    page_size : int;  (** bytes per simulated page (default 64 KiB) *)
    io_seconds_per_page : float;
        (** charged per page fault (default 0.6 ms ≈ 100 MB/s disk) *)
    residency_capacity : int option;
        (** max resident pages; [None] = unbounded (default) *)
  }

  val default : t
end

type t

val open_file : ?config:Config.t -> string -> t
(** Reads the whole file. Raises [Sys_error] if unreadable. *)

val of_bytes : ?config:Config.t -> name:string -> Bytes.t -> t
(** In-memory file, mainly for tests. *)

val name : t -> string
val length : t -> int

val bytes : t -> Bytes.t
(** The raw contents. Parsers read this directly (zero-copy) and are
    responsible for calling {!touch} on the ranges they consume. Treat as
    read-only. *)

val touch : t -> int -> int -> unit
(** [touch t pos len] records an access to bytes [pos, pos+len). Cheap when
    the range stays within the most recently touched page. Out-of-range
    positions are clamped. *)

val faults : t -> int
val hits : t -> int
val resident_pages : t -> int

(** {1 Concurrent-read views}

    [t] is not safe to {!touch} from several domains at once (the residency
    structures and counters are unsynchronized). A parallel scan gives each
    worker domain its own {!fork_view} — sharing the underlying bytes but
    owning a private copy of the residency state with zeroed counters — and
    the coordinator folds the views back with {!absorb} after joining. *)

val fork_view : t -> t
(** A view sharing the file contents and current page residency, with its
    own counters (zeroed) and residency copy. Only the forking domain may
    continue touching the original while views are live. *)

val absorb : into:t -> t -> unit
(** [absorb ~into view] adds the view's fault/hit counts into [into] and
    marks the view's resident pages resident there (bounded residency keeps
    [into]'s LRU recency for pages it already held). *)

val simulated_io_seconds : t -> float
(** [faults * io_seconds_per_page], accumulated since the last
    {!reset_counters}. *)

val drop_cache : t -> unit
(** Evict all resident pages (next run is cold). Also resets the counters. *)

val reset_counters : t -> unit
(** Zero the fault/hit counters but keep pages resident (start of a warm
    measurement). *)

val config : t -> Config.t
