(** Typed resource-governance errors.

    The governance layer (deadlines, cooperative cancellation, memory
    budget, admission control) never fails with a bare [Failure]: callers
    that must distinguish "your query hit a limit" from "your data is
    malformed" get dedicated exceptions, each carrying enough context to
    act on — retry later, raise the budget, loosen the deadline. *)

type progress = {
  rows_scanned : int;
      (** rows the scan kernels had processed when the query stopped
          (batched accounting: exact to the governance check granularity) *)
  io_seconds : float;  (** simulated I/O charged so far *)
  compile_seconds : float;  (** simulated JIT compilation charged so far *)
  elapsed_seconds : float;  (** wall clock from query start to the stop *)
}
(** What a query had already paid when governance stopped it — the
    partial-progress snapshot carried by {!Deadline_exceeded} and
    {!Cancelled}. *)

exception Deadline_exceeded of progress
(** The query's {!Cancel} token expired ([Config.deadline]); every worker
    domain quiesced at a morsel/row-batch boundary before this was
    raised. *)

exception Cancelled of progress
(** The query's {!Cancel} token was cancelled explicitly ({!Cancel.cancel}),
    e.g. by a client disconnect. Same quiescence guarantees as
    {!Deadline_exceeded}. *)

exception Overloaded of { active : int; limit : int }
(** Admission control rejected the query: [active] queries already admitted
    against a [max_concurrent] gate of [limit]. Nothing ran; retry later. *)

exception Invalid_config of string
(** A configuration value failed validation at construction time (e.g.
    [parallelism < 1], a negative deadline, a zero cache capacity). *)

val pp_progress : Format.formatter -> progress -> unit

val to_string : exn -> string option
(** One-line rendering of the governance exceptions above; [None] for any
    other exception. Also installed as a [Printexc] printer. *)
