(** A unified, byte-denominated memory budget for adaptive state.

    RAW's auxiliary structures — column shreds, JIT template artifacts,
    positional maps, resident file pages — all grow monotonically with the
    workload. A [Mem_budget.t] makes them share one bound: each store
    registers as a {e consumer} with a usage probe and a shrink callback,
    and before growing, a store (or its caller) calls {!reserve}. Under
    pressure the budget shrinks consumers in ascending priority order
    (cold shreds first, then cold templates, then positional maps, then
    file pages); when even that cannot make room, {!reserve} returns
    [false] and the caller degrades gracefully — typically by streaming
    from the raw file instead of caching.

    Accounting is pull-based (usage probes, no per-touch charging), so an
    unconstrained engine pays nothing; probes only run inside {!reserve}.
    All operations are serialized by an internal mutex; shrink callbacks
    run with it held and must not call back into the budget.

    The budget counts freed bytes under the {!Io_stats} counter
    [gov.evicted_bytes] and failed reservations under
    [gov.reservation_failures]; shrink callbacks count their own item-level
    evictions ([gov.evictions] and [gov.evictions.<consumer>]). *)

type t

val create : capacity_bytes:int -> t
(** Raises [Resource_error.Invalid_config] if [capacity_bytes <= 0]. *)

val capacity : t -> int

val register :
  t ->
  name:string ->
  priority:int ->
  usage:(unit -> int) ->
  shrink:(need:int -> int) ->
  unit
(** Add a consumer. [usage ()] returns its current bytes; [shrink ~need]
    frees what it can (up to everything), returns the bytes actually freed,
    and is responsible for any internal bookkeeping of what it dropped.
    Lower [priority] shrinks first. Registering twice under one name
    replaces the previous registration. *)

val used : t -> int
(** Sum of all consumers' usage probes. *)

val reserve : t -> bytes:int -> bool
(** Make room for [bytes] new bytes: [true] immediately if they fit;
    otherwise shrink consumers in priority order until they do. [false]
    if the budget cannot be satisfied even after shrinking everything —
    the caller must not allocate the cached structure (degrade instead).
    [bytes <= 0] is always [true]. *)
