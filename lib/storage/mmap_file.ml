module Config = struct
  type t = {
    page_size : int;
    io_seconds_per_page : float;
    residency_capacity : int option;
  }

  let default =
    { page_size = 65536; io_seconds_per_page = 0.0006; residency_capacity = None }
end

type residency =
  | Bitmap of Bytes.t
  | Bounded of (int, unit) Lru.t

type t = {
  name : string;
  data : Bytes.t;
  config : Config.t;
  n_pages : int;
  mutable residency : residency;
  mutable resident : int;
  mutable faults : int;
  mutable hits : int;
  mutable last_page : int; (* fast path: page we most recently hit *)
}

let make_residency config n_pages =
  match config.Config.residency_capacity with
  | None -> Bitmap (Bytes.make (max n_pages 1) '\000')
  | Some cap -> Bounded (Lru.create ~capacity:cap ())

let of_bytes ?(config = Config.default) ~name data =
  if config.Config.page_size <= 0 then
    invalid_arg "Mmap_file: page_size must be positive";
  let n_pages =
    (Bytes.length data + config.Config.page_size - 1) / config.Config.page_size
  in
  {
    name;
    data;
    config;
    n_pages;
    residency = make_residency config n_pages;
    resident = 0;
    faults = 0;
    hits = 0;
    last_page = -1;
  }

let open_file ?config path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      of_bytes ?config ~name:path data)

let name t = t.name
let length t = Bytes.length t.data
let bytes t = t.data
let config t = t.config

let touch_page t p =
  if p = t.last_page then t.hits <- t.hits + 1
  else begin
    t.last_page <- p;
    match t.residency with
    | Bitmap b ->
      if Bytes.unsafe_get b p <> '\000' then t.hits <- t.hits + 1
      else begin
        Bytes.unsafe_set b p '\001';
        t.resident <- t.resident + 1;
        t.faults <- t.faults + 1
      end
    | Bounded lru ->
      (match Lru.find lru p with
       | Some () -> t.hits <- t.hits + 1
       | None ->
         t.faults <- t.faults + 1;
         let evicted = Lru.add lru p () in
         t.resident <- t.resident + 1 - List.length evicted)
  end

let touch t pos len =
  if len > 0 && t.n_pages > 0 then begin
    let last = Bytes.length t.data - 1 in
    let lo = min (max pos 0) last in
    let hi = min (max (pos + len - 1) 0) last in
    let ps = t.config.Config.page_size in
    let p0 = lo / ps and p1 = hi / ps in
    if p0 = p1 then touch_page t p0
    else
      for p = p0 to p1 do
        touch_page t p
      done
  end

let faults t = t.faults
let hits t = t.hits
let resident_pages t = t.resident

(* ---------- concurrent-read views ---------- *)

let copy_residency = function
  | Bitmap b -> Bitmap (Bytes.copy b)
  | Bounded lru ->
    let copy =
      match Lru.capacity lru with
      | Some c -> Lru.create ~capacity:c ()
      | None -> Lru.create ()
    in
    (* keys are MRU-first; re-add LRU-first to preserve recency order *)
    List.iter (fun p -> ignore (Lru.add copy p ())) (List.rev (Lru.keys lru));
    Bounded copy

let fork_view t =
  {
    t with
    residency = copy_residency t.residency;
    faults = 0;
    hits = 0;
    last_page = -1;
  }

let absorb ~into view =
  into.faults <- into.faults + view.faults;
  into.hits <- into.hits + view.hits;
  (match (into.residency, view.residency) with
   | Bitmap a, Bitmap b ->
     let n = min (Bytes.length a) (Bytes.length b) in
     for i = 0 to n - 1 do
       if Bytes.unsafe_get b i <> '\000' && Bytes.unsafe_get a i = '\000' then begin
         Bytes.unsafe_set a i '\001';
         into.resident <- into.resident + 1
       end
     done
   | Bounded lru, Bounded vlru ->
     List.iter
       (fun p -> if not (Lru.mem lru p) then ignore (Lru.add lru p ()))
       (List.rev (Lru.keys vlru));
     into.resident <- Lru.length lru
   | _ -> ());
  into.last_page <- -1

let simulated_io_seconds t =
  float_of_int t.faults *. t.config.Config.io_seconds_per_page

let reset_counters t =
  t.faults <- 0;
  t.hits <- 0

let drop_cache t =
  (match t.residency with
   | Bitmap b -> Bytes.fill b 0 (Bytes.length b) '\000'
   | Bounded lru -> Lru.clear lru);
  t.resident <- 0;
  t.last_page <- -1;
  reset_counters t
