module Config = struct
  type t = {
    page_size : int;
    io_seconds_per_page : float;
    residency_capacity : int option;
  }

  let default =
    { page_size = 65536; io_seconds_per_page = 0.0006; residency_capacity = None }
end

module Fault = struct
  type t = {
    seed : int;
    flip_per_page : float;
    truncate_pages : int;
    only : string option;
  }

  let make ?(seed = 0) ?(flip_per_page = 0.) ?(truncate_pages = 0) ?only () =
    { seed; flip_per_page; truncate_pages; only }

  let applies t ~name =
    match t.only with
    | None -> true
    | Some needle ->
      let nl = String.length needle and hl = String.length name in
      nl = 0
      || (nl <= hl
          && (let found = ref false in
              for i = 0 to hl - nl do
                if (not !found) && String.sub name i nl = needle then
                  found := true
              done;
              !found))

  (* avalanche mix so (seed, page) -> pseudo-random int is deterministic
     across runs, domains and processes — no Random state involved *)
  let mix x =
    let x = x land max_int in
    let x = x lxor (x lsr 16) in
    let x = x * 0x7feb352d land max_int in
    let x = x lxor (x lsr 15) in
    let x = x * 0x846ca68b land max_int in
    x lxor (x lsr 16)

  let page_hash t p = mix ((t.seed * 0x1000193) + (p * 0x811c9dc5))

  let from_env () =
    let geti k = Option.bind (Sys.getenv_opt k) int_of_string_opt in
    let getf k = Option.bind (Sys.getenv_opt k) float_of_string_opt in
    let seed = geti "RAW_FAULT_SEED" in
    let flip = getf "RAW_FAULT_FLIP" in
    let trunc =
      match geti "RAW_FAULT_TRUNC" with
      | Some _ as t -> t
      | None -> geti "RAW_FAULT_TRUNCATE"
    in
    match (seed, flip, trunc) with
    | None, None, None -> None
    | _ ->
      Some
        {
          seed = Option.value seed ~default:0;
          flip_per_page = Option.value flip ~default:0.;
          truncate_pages = Option.value trunc ~default:0;
          only = Sys.getenv_opt "RAW_FAULT_ONLY";
        }
end

(* copy-accounting sites, precomputed so the profiled path allocates
   nothing; Prof_gate.copy is one domain-local read and a branch when
   profiling is off *)
let site_open = Prof_gate.site "mmap.open"
let site_inject = Prof_gate.site "mmap.inject"
let site_fork = Prof_gate.site "mmap.fork_residency"

type residency =
  | Bitmap of Bytes.t
  | Bounded of (int, unit) Lru.t

type t = {
  name : string;
  data : Bytes.t;
  config : Config.t;
  n_pages : int;
  mutable residency : residency;
  mutable resident : int;
  mutable faults : int;
  mutable hits : int;
  mutable last_page : int; (* fast path: page we most recently hit *)
  injected_flips : int;
  injected_truncated_bytes : int;
}

let make_residency config n_pages =
  match config.Config.residency_capacity with
  | None -> Bitmap (Bytes.make (max n_pages 1) '\000')
  | Some cap -> Bounded (Lru.create ~capacity:cap ())

(* Deterministic media-fault simulation, applied once when the file is
   opened: truncation at page granularity (a short read) and per-page
   byte flips. Injecting into the opened copy — rather than on every
   [touch] — keeps parallel and sequential scans trivially identical
   under the same seed: every fork_view shares the already-corrupted
   bytes. The caller's buffer is never mutated (we corrupt a copy). *)
let inject fault ~page_size:ps data =
  let len = Bytes.length data in
  let keep =
    if fault.Fault.truncate_pages <= 0 then len
    else
      let n_pages = (len + ps - 1) / ps in
      let keep_pages = max 0 (n_pages - fault.Fault.truncate_pages) in
      min len (keep_pages * ps)
  in
  let data = Bytes.sub data 0 keep in
  Prof_gate.copy site_inject keep;
  let flips = ref 0 in
  if fault.Fault.flip_per_page > 0. then begin
    let n_pages = (keep + ps - 1) / ps in
    for p = 0 to n_pages - 1 do
      let h = Fault.page_hash fault p in
      if
        float_of_int (h land 0xFFFFF) /. 1048576.0
        < fault.Fault.flip_per_page
      then begin
        let page_len = min ps (keep - (p * ps)) in
        if page_len > 0 then begin
          let pos = (p * ps) + (Fault.mix (h + 1) mod page_len) in
          let x = Fault.mix (h + 2) land 0xff in
          let x = if x = 0 then 0x55 else x in
          Bytes.set data pos
            (Char.chr (Char.code (Bytes.get data pos) lxor x));
          incr flips
        end
      end
    done
  end;
  (data, !flips, len - keep)

let of_bytes ?(config = Config.default) ?fault ~name data =
  if config.Config.page_size <= 0 then
    invalid_arg "Mmap_file: page_size must be positive";
  let fault =
    match fault with Some _ -> fault | None -> Fault.from_env ()
  in
  let data, injected_flips, injected_truncated_bytes =
    match fault with
    | Some f when Fault.applies f ~name ->
      inject f ~page_size:config.Config.page_size data
    | _ -> (data, 0, 0)
  in
  let n_pages =
    (Bytes.length data + config.Config.page_size - 1) / config.Config.page_size
  in
  {
    name;
    data;
    config;
    n_pages;
    residency = make_residency config n_pages;
    resident = 0;
    faults = 0;
    hits = 0;
    last_page = -1;
    injected_flips;
    injected_truncated_bytes;
  }

let open_file ?config ?fault path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      Prof_gate.copy site_open len;
      of_bytes ?config ?fault ~name:path data)

let name t = t.name
let length t = Bytes.length t.data
let bytes t = t.data
let config t = t.config

let touch_page t p =
  if p = t.last_page then t.hits <- t.hits + 1
  else begin
    t.last_page <- p;
    match t.residency with
    | Bitmap b ->
      if Bytes.unsafe_get b p <> '\000' then t.hits <- t.hits + 1
      else begin
        Bytes.unsafe_set b p '\001';
        t.resident <- t.resident + 1;
        t.faults <- t.faults + 1
      end
    | Bounded lru ->
      (match Lru.find lru p with
       | Some () -> t.hits <- t.hits + 1
       | None ->
         t.faults <- t.faults + 1;
         let evicted = Lru.add lru p () in
         t.resident <- t.resident + 1 - List.length evicted)
  end

let touch t pos len =
  if len > 0 && t.n_pages > 0 then begin
    let last = Bytes.length t.data - 1 in
    let lo = min (max pos 0) last in
    let hi = min (max (pos + len - 1) 0) last in
    let ps = t.config.Config.page_size in
    let p0 = lo / ps and p1 = hi / ps in
    if p0 = p1 then touch_page t p0
    else
      for p = p0 to p1 do
        touch_page t p
      done
  end

let faults t = t.faults
let hits t = t.hits
let resident_pages t = t.resident
let injected_flips t = t.injected_flips
let injected_truncated_bytes t = t.injected_truncated_bytes

(* ---------- concurrent-read views ---------- *)

let copy_residency = function
  | Bitmap b ->
    Prof_gate.copy site_fork (Bytes.length b);
    Bitmap (Bytes.copy b)
  | Bounded lru ->
    let copy =
      match Lru.capacity lru with
      | Some c -> Lru.create ~capacity:c ()
      | None -> Lru.create ()
    in
    (* keys are MRU-first; re-add LRU-first to preserve recency order *)
    List.iter (fun p -> ignore (Lru.add copy p ())) (List.rev (Lru.keys lru));
    Bounded copy

let fork_view t =
  {
    t with
    residency = copy_residency t.residency;
    faults = 0;
    hits = 0;
    last_page = -1;
  }

let absorb ~into view =
  into.faults <- into.faults + view.faults;
  into.hits <- into.hits + view.hits;
  (match (into.residency, view.residency) with
   | Bitmap a, Bitmap b ->
     let n = min (Bytes.length a) (Bytes.length b) in
     for i = 0 to n - 1 do
       if Bytes.unsafe_get b i <> '\000' && Bytes.unsafe_get a i = '\000' then begin
         Bytes.unsafe_set a i '\001';
         into.resident <- into.resident + 1
       end
     done
   | Bounded lru, Bounded vlru ->
     List.iter
       (fun p -> if not (Lru.mem lru p) then ignore (Lru.add lru p ()))
       (List.rev (Lru.keys vlru));
     into.resident <- Lru.length lru
   | _ -> ());
  into.last_page <- -1

let simulated_io_seconds t =
  float_of_int t.faults *. t.config.Config.io_seconds_per_page

let reset_counters t =
  t.faults <- 0;
  t.hits <- 0

let drop_cache t =
  (match t.residency with
   | Bitmap b -> Bytes.fill b 0 (Bytes.length b) '\000'
   | Bounded lru -> Lru.clear lru);
  t.resident <- 0;
  t.last_page <- -1;
  reset_counters t
