(** Cooperative cancellation tokens with deadlines.

    A token is shared by a query's coordinator and all of its morsel worker
    domains. Scan kernels call {!check} (directly or through a
    {!batch_checker}) at row-batch boundaries; when the token has tripped —
    its deadline passed, it was {!cancel}ed, or a test-only check budget ran
    out — the check raises {!Stop}, every worker unwinds at its next
    boundary, and the coordinator joins them all before surfacing a typed
    {!Resource_error} to the caller. Checking an inactive token (the
    default {!never}) is a single load-and-branch, so governance costs
    nothing when unused.

    The {e ambient} token ({!current}/{!set_current}) is domain-local:
    the executor installs the query's token for the duration of the run,
    and {!Raw_core.Morsel.map_domains} re-installs it inside each spawned
    worker (domain-local storage is not inherited across [Domain.spawn]). *)

type reason = Deadline | User

exception Stop of reason
(** Raised by {!check}. Internal unwinding signal — the executor converts
    it into {!Resource_error.Deadline_exceeded} / [Cancelled] with a
    partial-progress snapshot; it should not escape to end users. *)

type t

val never : t
(** The inert token: never trips, {!cancel} on it is a no-op, {!check}
    costs one branch. The ambient default. *)

val create :
  ?deadline_seconds:float -> ?trip_after_checks:int -> unit -> t
(** A live token. [deadline_seconds] arms a deadline that many seconds
    from now. [trip_after_checks] (a testing hook) makes the token trip as
    [User] after that many {!check}s across all domains — the deterministic
    way to stop a query mid-scan in tests. *)

val cancel : t -> unit
(** Trip the token as [User]. Idempotent; a deadline that already fired
    wins. No-op on {!never}. *)

val triggered : t -> reason option
(** Why the token has tripped, if it has. Arms the deadline as a side
    effect (first observer to see the deadline pass records [Deadline]). *)

val check : t -> unit
(** Raise [Stop reason] if the token has tripped, else return. *)

val active : t -> bool
(** [false] only for {!never}-like inert tokens. *)

val batch_checker : ?granularity:int -> t -> unit -> unit
(** [batch_checker t] is a per-row hook for scan loops: call it once per
    row; every [granularity] rows (default 512, rounded to a power of two)
    it records the batch under the ["scan.rows_scanned"] counter — the
    partial-progress accounting — and runs {!check}. On an inactive token
    it returns a shared no-op closure. *)

(** {1 Ambient token} *)

val current : unit -> t
(** This domain's ambient token; {!never} unless something installed one. *)

val set_current : t -> unit

val with_current : t -> (unit -> 'a) -> ('a, exn) result
(** Install [t] as ambient, run, restore the previous ambient token, and
    return the outcome ([Error] carries any exception, including {!Stop},
    for the caller to translate). *)
