(** Deterministic seeded network-chaos plans.

    The socket layer's sibling of {!Mmap_file.Fault}: a pure function of a
    seed that tells a chaos driver {e what} to inflict on a connection and
    {e when}. Nothing here touches a socket — the module only makes the
    randomness reproducible, so a red chaos run replays bit-for-bit from
    its seed (same [RAW_NET_FAULT_SEED] → same fault sequence, across
    processes and machines; no [Random] state involved).

    A {!Stream} is a splitmix-style generator; {!fork} derives an
    independent substream from a label, so concurrent chaos clients each
    own a deterministic stream keyed by [(seed, client_id)] regardless of
    scheduling. {!plan} draws one {!action} from the configured mix — the
    socket fuzzer in [test/test_server_chaos.ml] and the [chaos-smoke] CI
    job both consume it, and the client retry layer borrows {!jitter} for
    its backoff so retry storms de-synchronize deterministically under
    test. *)

(** One thing a chaos driver does to a connection in place of (or around)
    a well-formed request. *)
type action =
  | Well_formed  (** send a valid request and read the response *)
  | Torn_write of float
      (** send a prefix of the request, stall this many seconds, then the
          rest — exercises the server's request timeout accounting *)
  | Stall of float
      (** connect (or stay connected) and send nothing for this long —
          exercises idle reaping *)
  | Disconnect_mid_request
      (** send a partial line and vanish — EOF mid-request *)
  | Disconnect_before_read
      (** send a full request and vanish without reading the response *)
  | Garbage of string  (** raw non-JSON bytes, newline-terminated *)
  | Oversized of int  (** a line of this many bytes, past the bound *)
  | Wrong_shape of string
      (** valid JSON the protocol rejects: non-object, unknown op, ... *)

module Stream : sig
  type t

  val make : seed:int -> t

  val fork : t -> label:int -> t
  (** An independent substream. [fork] does not advance [t]; the child is
      a pure function of [t]'s seed and [label]. *)

  val float : t -> float
  (** Next draw in [0, 1). Advances the stream. *)

  val int : t -> bound:int -> int
  (** Next draw in [0, bound). [bound] must be positive. *)

  val jitter : t -> float
  (** Multiplicative backoff jitter in [0.5, 1.5). *)
end

type t = {
  seed : int;
  chaos_per_request : float;
      (** probability a chaos client misbehaves on a given request
          (otherwise it sends a well-formed one) *)
  max_stall_seconds : float;  (** upper bound for torn-write/stall delays *)
  oversize_bytes : int;  (** length drawn for [Oversized] lines *)
}

val make :
  ?seed:int ->
  ?chaos_per_request:float ->
  ?max_stall_seconds:float ->
  ?oversize_bytes:int ->
  unit ->
  t

val from_env : unit -> t option
(** Reads [RAW_NET_FAULT_SEED] (int), [RAW_NET_FAULT_CHAOS] (probability,
    default 0.5), [RAW_NET_FAULT_STALL] (seconds, default 0.2) and
    [RAW_NET_FAULT_OVERSIZE] (bytes, default 2 MiB); [None] unless the
    seed is set. Mirrors {!Mmap_file.Fault.from_env}. *)

val stream : t -> client:int -> Stream.t
(** The per-client substream: pure in [(t.seed, client)]. *)

val plan : t -> Stream.t -> action
(** Draw the next action from the configured mix. The garbage /
    wrong-shape payloads are drawn from small fixed corpora inside this
    module so every protocol edge gets exercised at any seed. *)
