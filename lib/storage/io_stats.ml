(* Counters are domain-local: each domain accumulates into its own table, so
   morsel workers never contend (or race) on shared refs. A parallel-scan
   coordinator snapshots each worker's table after join and folds it into its
   own with [merge]. *)
let key : (string, float ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let table () = Domain.DLS.get key

let cell name =
  let table = table () in
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
    let r = ref 0. in
    Hashtbl.replace table name r;
    r

let incr name =
  let r = cell name in
  r := !r +. 1.

let add name n =
  let r = cell name in
  r := !r +. float_of_int n

let add_float name x =
  let r = cell name in
  r := !r +. x

(* Round to nearest: counters bumped via [add_float] (per-domain deltas,
   fractional charges) accumulate float error, and truncation would turn
   0.9999999 into 0. *)
let get name =
  int_of_float
    (Float.round (match Hashtbl.find_opt (table ()) name with Some r -> !r | None -> 0.))

let get_float name =
  match Hashtbl.find_opt (table ()) name with Some r -> !r | None -> 0.

let reset name =
  match Hashtbl.find_opt (table ()) name with
  | Some r -> r := 0.
  | None -> ()

let reset_all () = Hashtbl.iter (fun _ r -> r := 0.) (table ())

let snapshot () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) (table ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge deltas =
  List.iter
    (fun (name, x) ->
      let r = cell name in
      r := !r +. x)
    deltas

let pp_snapshot ppf () =
  List.iter
    (fun (k, v) ->
      if Float.is_integer v then Format.fprintf ppf "%-32s %12.0f@." k v
      else Format.fprintf ppf "%-32s %12.4f@." k v)
    (snapshot ())
