(* The chaos-injection harness (PR 8): a seeded socket-level fuzzer plus
   targeted protocol-armor probes against a live server. Every hostile
   byte sequence here is drawn either from Net_fault's fixed corpora or
   from its seeded streams, so a red run replays bit-for-bit from
   RAW_NET_FAULT_SEED. The assertions are always the same three: good
   clients get oracle-correct answers *during* chaos, the server is still
   answering *after* chaos, and post-chaos answers are bit-identical to a
   fresh server over the same file. *)

open Raw_vector
open Raw_core
module Jsons = Raw_obs.Jsons
module Io_stats = Raw_storage.Io_stats
module Net_fault = Raw_storage.Net_fault

(* evil clients provoke EPIPE on purpose; it must not kill the test
   binary (the server and client armor ignore it for their processes,
   this covers the raw connections below) *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let mk_rows n =
  List.init n (fun i -> [ i; i mod 7; i * 37 mod 100; i / 10 ])

let connect_when_ready socket_path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Server.Client.connect socket_path with
    | c -> c
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not come up within 10s";
      Thread.delay 0.01;
      go ()
  in
  go ()

let start_server ?(config = Config.default) ?(batch_window = 0.002) ~rows () =
  let path = Test_util.write_csv_rows (mk_rows rows) in
  let socket_path = Test_util.fresh_path ".sock" in
  let db = Raw_db.create ~config () in
  Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
  let thread =
    Thread.create (fun () -> Server.serve ~batch_window ~socket_path db) ()
  in
  (socket_path, path, thread)

let stop_server socket_path thread =
  (* a just-closed client's session slot is released asynchronously, so
     connecting right away can still be shed at the door (a code-5 line,
     or EPIPE when the server closes first) — retry until the shutdown
     rpc is actually accepted *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let c = connect_when_ready socket_path in
    let r = Server.Client.shutdown c in
    Server.Client.close c;
    match r with
    | Ok j when Jsons.member "ok" j = Some (Jsons.Bool true) -> ()
    | Ok _ | Error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "shutdown not accepted within 10s"
      else begin
        Thread.delay 0.02;
        go ()
      end
  in
  go ();
  Thread.join thread;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket_path)

(* ------------------------------------------------------------------ *)
(* A raw connection: arbitrary bytes out, protocol lines back           *)
(* ------------------------------------------------------------------ *)

module Raw_conn = struct
  type t = { fd : Unix.file_descr; mutable pending : string }

  let connect socket_path =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | () -> { fd; pending = "" }
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "server did not come up within 10s";
        Thread.delay 0.01;
        go ()
    in
    go ()

  let send t s =
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring t.fd s !off (len - !off)
    done

  let read_line ?(timeout = 10.) t =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      match String.index_opt t.pending '\n' with
      | Some i ->
        let line = String.sub t.pending 0 i in
        t.pending <- String.sub t.pending (i + 1) (String.length t.pending - i - 1);
        `Line line
      | None -> (
        let now = Unix.gettimeofday () in
        if now >= deadline then `Timeout
        else
          match
            Unix.select [ t.fd ] [] [] (Float.min 0.25 (deadline -. now))
          with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | [], _, _ -> go ()
          | _ -> (
            let b = Bytes.create 65536 in
            match Unix.read t.fd b 0 65536 with
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
              `Eof
            | 0 -> `Eof
            | n ->
              t.pending <- t.pending ^ Bytes.sub_string b 0 n;
              go ()))
    in
    go ()

  let close t =
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
end

let expect_response ?(timeout = 10.) rc what =
  match Raw_conn.read_line ~timeout rc with
  | `Line l -> (
    match Jsons.parse l with
    | Ok j -> j
    | Error e -> Alcotest.failf "%s: unparseable response %S (%s)" what l e)
  | `Eof -> Alcotest.failf "%s: connection closed instead of a response" what
  | `Timeout -> Alcotest.failf "%s: no response within %gs" what timeout

let check_code what j want =
  Alcotest.(check bool)
    (what ^ ": ok=false") true
    (Jsons.member "ok" j = Some (Jsons.Bool false));
  match Jsons.member "code" j with
  | Some (Jsons.Int c) -> Alcotest.(check int) (what ^ ": code") want c
  | _ -> Alcotest.failf "%s: no code in %s" what (Jsons.to_string j)

let count_response what j want =
  Alcotest.(check bool)
    (what ^ ": ok") true
    (Jsons.member "ok" j = Some (Jsons.Bool true));
  match Jsons.member "rows" j with
  | Some (Jsons.List [ Jsons.List [ Jsons.Int n ] ]) ->
    Alcotest.(check int) (what ^ ": count") want n
  | _ -> Alcotest.failf "%s: bad rows in %s" what (Jsons.to_string j)

(* a request line of exactly [target] bytes: the padding lives inside the
   SQL string, where the lexer skips it *)
let padded_request ~target sql =
  let base = Printf.sprintf "{\"sql\": \"%s\"}" sql in
  let pad = target - String.length base in
  if pad < 0 then Alcotest.failf "target %d too small for %s" target sql;
  Printf.sprintf "{\"sql\": \"%s%s\"}" sql (String.make pad ' ')

(* ------------------------------------------------------------------ *)
(* Protocol edges                                                      *)
(* ------------------------------------------------------------------ *)

let protocol_suite =
  [
    Alcotest.test_case
      "edge lines: empty, CRLF, non-object JSON, unknown op, duplicate ids"
      `Slow (fun () ->
        let config =
          {
            Config.default with
            Config.max_request_bytes = 4096;
            request_timeout = Some 10.;
            idle_timeout = Some 60.;
          }
        in
        let socket_path, _, server = start_server ~config ~rows:100 () in
        let rc = Raw_conn.connect socket_path in
        Fun.protect
          ~finally:(fun () -> Raw_conn.close rc)
          (fun () ->
            (* blank lines are ignored, not errors: the next real request
               on the same session answers *)
            Raw_conn.send rc "\n";
            Raw_conn.send rc "\r\n";
            Raw_conn.send rc "{\"op\": \"ping\"}\r\n";
            let j = expect_response rc "ping after blanks" in
            Alcotest.(check bool)
              "pong" true
              (Jsons.member "ok" j = Some (Jsons.Bool true));
            (* valid JSON the dispatcher must refuse: every wrong-shape
               line draws a code-2 answer and the session survives *)
            List.iter
              (fun line ->
                Raw_conn.send rc (line ^ "\n");
                let j = expect_response rc line in
                check_code line j 2)
              [
                "42";
                "[\"not\", \"an\", \"object\"]";
                "null";
                "{\"op\": \"unknown\"}";
                "{\"op\": 7}";
                "{\"sql\": 42}";
                "{}";
              ];
            (* duplicate "id" keys: the parser keeps both pairs; the
               request still answers (member takes the first) *)
            Raw_conn.send rc "{\"id\": 1, \"id\": 2, \"op\": \"ping\"}\n";
            let j = expect_response rc "duplicate ids" in
            Alcotest.(check bool)
              "duplicate ids answered" true
              (Jsons.member "ok" j = Some (Jsons.Bool true));
            (* raw garbage draws a parse error, not a disconnect *)
            Raw_conn.send rc "}{\n";
            check_code "garbage" (expect_response rc "garbage") 2;
            (* and the session is still fully usable *)
            Raw_conn.send rc "{\"sql\": \"SELECT COUNT(*) FROM t\"}\n";
            count_response "after the gauntlet" (expect_response rc "count") 100);
        stop_server socket_path server);
    Alcotest.test_case
      "max_request_bytes boundary: exact accepted, +1 typed too_large" `Slow
      (fun () ->
        let limit = 512 in
        let config =
          {
            Config.default with
            Config.max_request_bytes = limit;
            request_timeout = Some 10.;
            idle_timeout = Some 60.;
          }
        in
        let socket_path, _, server = start_server ~config ~rows:100 () in
        let rc = Raw_conn.connect socket_path in
        Fun.protect
          ~finally:(fun () -> Raw_conn.close rc)
          (fun () ->
            let sql = "SELECT COUNT(*) FROM t" in
            (* exactly at the bound: accepted and answered *)
            Raw_conn.send rc (padded_request ~target:limit sql ^ "\n");
            count_response "boundary line" (expect_response rc "boundary") 100;
            (* one byte past: a typed too_large error — not a disconnect,
               not unbounded buffering *)
            Raw_conn.send rc (padded_request ~target:(limit + 1) sql ^ "\n");
            let j = expect_response rc "limit+1" in
            check_code "limit+1" j 2;
            Alcotest.(check bool)
              "kind=too_large" true
              (Jsons.member "kind" j = Some (Jsons.Str "too_large"));
            (* a grossly oversized line likewise, with memory bounded by
               the drain loop *)
            Raw_conn.send rc (String.make (8 * limit) 'x' ^ "\n");
            let j = expect_response rc "8x oversized" in
            Alcotest.(check bool)
              "kind=too_large again" true
              (Jsons.member "kind" j = Some (Jsons.Str "too_large"));
            (* the session stays usable after every rejection *)
            Raw_conn.send rc (Printf.sprintf "{\"sql\": \"%s\"}\n" sql);
            count_response "after too_large" (expect_response rc "after") 100;
            Alcotest.(check bool)
              "server.too_large counted" true
              (Io_stats.get "server.too_large" >= 2));
        stop_server socket_path server);
  ]

(* ------------------------------------------------------------------ *)
(* Slow loris and idle reaping                                         *)
(* ------------------------------------------------------------------ *)

let loris_suite =
  [
    Alcotest.test_case
      "a one-byte-at-a-time client is reaped while 8 sessions work" `Slow
      (fun () ->
        let config =
          {
            Config.default with
            Config.request_timeout = Some 1.0;
            idle_timeout = Some 20.;
          }
        in
        let socket_path, path, server = start_server ~config ~rows:1000 () in
        let oracle = Raw_db.create () in
        Raw_db.register_csv oracle ~name:"t" ~path
          ~columns:(Test_util.int_cols 4) ();
        let expect k =
          match
            Raw_db.scalar oracle
              (Printf.sprintf "SELECT COUNT(*) FROM t WHERE col0 < %d" k)
          with
          | Value.Int n -> n
          | v -> Alcotest.failf "non-int count %s" (Value.to_string v)
        in
        let before = Io_stats.get "server.session_end.timeout_request" in
        (* the loris: drip a valid-looking request one byte at a time,
           never reaching the newline *)
        let reaped = ref false in
        let loris =
          Thread.create
            (fun () ->
              let rc = Raw_conn.connect socket_path in
              let payload = "{\"sql\": \"SELECT COUNT(*) FROM t\"}" in
              (try
                 for i = 0 to String.length payload - 1 do
                   Raw_conn.send rc (String.make 1 payload.[i]);
                   (* confirm the close instead of writing into a dead
                      buffer: a reaped fd reads EOF *)
                   (match Raw_conn.read_line ~timeout:0.3 rc with
                   | `Eof -> raise Exit
                   | `Timeout | `Line _ -> ());
                   ignore i
                 done
               with
              | Exit -> reaped := true
              | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                reaped := true);
              Raw_conn.close rc)
            ()
        in
        (* meanwhile 8 well-behaved sessions make progress *)
        let failures = ref [] in
        let fail_mutex = Mutex.create () in
        let goods =
          List.init 8 (fun si ->
              Thread.create
                (fun () ->
                  let c = connect_when_ready socket_path in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      for q = 0 to 3 do
                        let k = ((si * 4) + q + 1) * 13 in
                        let sql =
                          Printf.sprintf
                            "SELECT COUNT(*) FROM t WHERE col0 < %d" k
                        in
                        match Server.Client.query c sql with
                        | Ok j -> (
                          match Jsons.member "rows" j with
                          | Some (Jsons.List [ Jsons.List [ Jsons.Int n ] ])
                            when n = expect k ->
                            ()
                          | _ ->
                            Mutex.protect fail_mutex (fun () ->
                                failures :=
                                  (sql ^ " -> " ^ Jsons.to_string j)
                                  :: !failures))
                        | Error e ->
                          Mutex.protect fail_mutex (fun () ->
                              failures :=
                                (sql ^ ": " ^ Server.Client.err_to_string e)
                                :: !failures)
                      done))
                ())
        in
        List.iter Thread.join goods;
        Thread.join loris;
        (match !failures with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "%d good-client failure(s) during loris, e.g. %s"
            (List.length !failures) f);
        Alcotest.(check bool) "loris connection was closed" true !reaped;
        Alcotest.(check bool)
          "reap counted under session_end.timeout_request" true
          (Io_stats.get "server.session_end.timeout_request" > before);
        stop_server socket_path server);
    Alcotest.test_case "an idle session is reaped by idle_timeout" `Slow
      (fun () ->
        let config =
          {
            Config.default with
            Config.request_timeout = Some 10.;
            idle_timeout = Some 0.5;
          }
        in
        let socket_path, _, server = start_server ~config ~rows:50 () in
        let before = Io_stats.get "server.session_end.timeout_idle" in
        let rc = Raw_conn.connect socket_path in
        (* send nothing at all; the server must hang up on us *)
        (match Raw_conn.read_line ~timeout:8. rc with
        | `Eof -> ()
        | `Timeout -> Alcotest.fail "idle session was not reaped within 8s"
        | `Line l -> Alcotest.failf "unexpected line %S" l);
        Raw_conn.close rc;
        (* the counter is bumped by the session thread as it exits; give
           the scheduler a beat *)
        let deadline = Unix.gettimeofday () +. 5. in
        while
          Io_stats.get "server.session_end.timeout_idle" <= before
          && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.02
        done;
        Alcotest.(check bool)
          "reap counted under session_end.timeout_idle" true
          (Io_stats.get "server.session_end.timeout_idle" > before);
        stop_server socket_path server);
  ]

(* ------------------------------------------------------------------ *)
(* Shedding at the door                                                *)
(* ------------------------------------------------------------------ *)

let shed_suite =
  [
    Alcotest.test_case
      "past max_sessions: one code-5 line with retry_after, then the door"
      `Slow (fun () ->
        let config =
          { Config.default with Config.max_sessions = Some 2 }
        in
        let socket_path, _, server = start_server ~config ~rows:50 () in
        let c1 = connect_when_ready socket_path in
        let c2 = Server.Client.connect socket_path in
        (match (Server.Client.ping c1, Server.Client.ping c2) with
        | Ok _, Ok _ -> ()
        | _ -> Alcotest.fail "the two in-cap sessions must answer");
        (* the third connection is shed at the door *)
        let rc = Raw_conn.connect socket_path in
        let j = expect_response rc "shed line" in
        check_code "shed" j 5;
        Alcotest.(check bool)
          "kind=overloaded" true
          (Jsons.member "kind" j = Some (Jsons.Str "overloaded"));
        (match Jsons.member "retry_after" j with
        | Some (Jsons.Float s) ->
          Alcotest.(check bool) "positive retry hint" true (s > 0.)
        | _ -> Alcotest.failf "no retry_after in %s" (Jsons.to_string j));
        (match Raw_conn.read_line ~timeout:5. rc with
        | `Eof -> ()
        | _ -> Alcotest.fail "shed connection must be closed after the line");
        Raw_conn.close rc;
        Alcotest.(check bool)
          "shed counted" true (Io_stats.get "server.shed_sessions" >= 1);
        (* free a slot; with_retry rides the retry_after hint into it *)
        Server.Client.close c2;
        let r =
          Server.Client.with_retry
            ~policy:
              {
                Server.Client.default_retry with
                Server.Client.attempts = 10;
                base_delay = 0.02;
              }
            ~socket:socket_path
            (fun c -> Server.Client.query c "SELECT COUNT(*) FROM t")
        in
        (match r with
        | Ok j -> count_response "post-shed retry" j 50
        | Error e ->
          Alcotest.failf "retry did not recover: %s"
            (Server.Client.err_to_string e));
        Server.Client.close c1;
        stop_server socket_path server);
  ]

(* ------------------------------------------------------------------ *)
(* The seeded fuzzer                                                   *)
(* ------------------------------------------------------------------ *)

(* the post-chaos differential set: every operator shape the server
   replays, compared response-for-response against a fresh server *)
let differential_queries =
  [
    "SELECT col0, col2 FROM t WHERE col0 < 250";
    "SELECT COUNT(*) FROM t";
    "SELECT SUM(col0), MIN(col2) FROM t WHERE col1 = 3";
    "SELECT col1, COUNT(*) FROM t GROUP BY col1 ORDER BY col1 ASC";
    "SELECT col0 FROM t ORDER BY col0 DESC LIMIT 5";
    "SELECT col0 + col2 FROM t WHERE NOT (col1 = 0) LIMIT 10";
  ]

(* the comparable part of a response: what the query answered, shorn of
   provenance (seconds vary, cached/shared legitimately differ between a
   warmed chaos server and a cold fresh one) *)
let answer_fingerprint j =
  let part name =
    (name, Option.value (Jsons.member name j) ~default:Jsons.Null)
  in
  Jsons.to_string
    (Jsons.Obj [ part "ok"; part "columns"; part "types"; part "rows"; part "row_count" ])

let run_action socket_path action =
  let request =
    "{\"id\": 9, \"sql\": \"SELECT COUNT(*) FROM t WHERE col0 < 500\"}\n"
  in
  let half = String.length request / 2 in
  (* evil clients assert nothing about their own fate — being torn,
     reaped or refused is their job; the try swallows the fallout *)
  try
    let rc = Raw_conn.connect socket_path in
    Fun.protect
      ~finally:(fun () -> Raw_conn.close rc)
      (fun () ->
        match action with
        | Net_fault.Well_formed ->
          Raw_conn.send rc request;
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Torn_write s ->
          Raw_conn.send rc (String.sub request 0 half);
          Thread.delay s;
          Raw_conn.send rc
            (String.sub request half (String.length request - half));
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Stall s ->
          Thread.delay s;
          Raw_conn.send rc request;
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Disconnect_mid_request ->
          Raw_conn.send rc (String.sub request 0 half)
        | Net_fault.Disconnect_before_read -> Raw_conn.send rc request
        | Net_fault.Garbage g ->
          Raw_conn.send rc (g ^ "\n");
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Oversized n ->
          Raw_conn.send rc (String.make n 'x' ^ "\n");
          ignore (Raw_conn.read_line ~timeout:10. rc)
        | Net_fault.Wrong_shape w ->
          Raw_conn.send rc (w ^ "\n");
          ignore (Raw_conn.read_line ~timeout:10. rc))
  with Unix.Unix_error _ | Sys_error _ -> ()

let fuzz_suite =
  [
    Alcotest.test_case
      "seeded chaos: correct answers during, bit-identical answers after"
      `Slow (fun () ->
        let fault =
          match Net_fault.from_env () with
          | Some f -> f
          | None ->
            Net_fault.make ~seed:1337 ~chaos_per_request:0.8
              ~max_stall_seconds:0.2 ~oversize_bytes:4096 ()
        in
        let config =
          {
            Config.default with
            Config.max_request_bytes = min 4096 fault.Net_fault.oversize_bytes;
            request_timeout = Some 2.0;
            idle_timeout = Some 10.;
          }
        in
        let socket_path, path, server = start_server ~config ~rows:2000 () in
        let oracle = Raw_db.create () in
        Raw_db.register_csv oracle ~name:"t" ~path
          ~columns:(Test_util.int_cols 4) ();
        let expect k =
          match
            Raw_db.scalar oracle
              (Printf.sprintf "SELECT COUNT(*) FROM t WHERE col0 < %d" k)
          with
          | Value.Int n -> n
          | v -> Alcotest.failf "non-int count %s" (Value.to_string v)
        in
        (* 6 evil clients, each replaying its own seeded substream *)
        let evils =
          List.init 6 (fun client ->
              Thread.create
                (fun () ->
                  let s = Net_fault.stream fault ~client in
                  for _round = 1 to 12 do
                    run_action socket_path (Net_fault.plan fault s)
                  done)
                ())
        in
        (* 4 good clients verifying oracle counts through the storm *)
        let failures = ref [] in
        let fail_mutex = Mutex.create () in
        let goods =
          List.init 4 (fun si ->
              Thread.create
                (fun () ->
                  let c = connect_when_ready socket_path in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      for q = 0 to 9 do
                        let k = ((si * 10) + q + 1) * 31 in
                        let sql =
                          Printf.sprintf
                            "SELECT COUNT(*) FROM t WHERE col0 < %d" k
                        in
                        match Server.Client.query c sql with
                        | Ok j -> (
                          match Jsons.member "rows" j with
                          | Some (Jsons.List [ Jsons.List [ Jsons.Int n ] ])
                            when n = expect k ->
                            ()
                          | _ ->
                            Mutex.protect fail_mutex (fun () ->
                                failures :=
                                  (sql ^ " -> " ^ Jsons.to_string j)
                                  :: !failures))
                        | Error e ->
                          Mutex.protect fail_mutex (fun () ->
                              failures :=
                                (sql ^ ": " ^ Server.Client.err_to_string e)
                                :: !failures)
                      done))
                ())
        in
        List.iter Thread.join evils;
        List.iter Thread.join goods;
        (match !failures with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "%d good-client failure(s) during chaos, e.g. %s"
            (List.length !failures) f);
        (* the server survived; its post-chaos answers must be
           bit-identical to a brand-new server over the same file *)
        let fresh_socket, _, fresh_server =
          let db = Raw_db.create () in
          Raw_db.register_csv db ~name:"t" ~path
            ~columns:(Test_util.int_cols 4) ();
          let sp = Test_util.fresh_path ".sock" in
          ( sp,
            path,
            Thread.create
              (fun () -> Server.serve ~batch_window:0.002 ~socket_path:sp db)
              () )
        in
        let chaos_c = connect_when_ready socket_path in
        let fresh_c = connect_when_ready fresh_socket in
        List.iter
          (fun sql ->
            match
              (Server.Client.query chaos_c sql, Server.Client.query fresh_c sql)
            with
            | Ok a, Ok b ->
              Alcotest.(check string)
                ("post-chaos differential: " ^ sql)
                (answer_fingerprint b) (answer_fingerprint a)
            | Error e, _ | _, Error e ->
              Alcotest.failf "differential query failed: %s: %s" sql
                (Server.Client.err_to_string e))
          differential_queries;
        (match Server.Client.shutdown fresh_c with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "shutdown: %s" (Server.Client.err_to_string e));
        Server.Client.close fresh_c;
        Thread.join fresh_server;
        Server.Client.close chaos_c;
        stop_server socket_path server);
  ]

(* ------------------------------------------------------------------ *)
(* Determinism of the fault plans themselves                           *)
(* ------------------------------------------------------------------ *)

let determinism_suite =
  [
    Alcotest.test_case "same seed, same fault sequence" `Quick (fun () ->
        let fault = Net_fault.make ~seed:0xbeef () in
        let draw () =
          let s = Net_fault.stream fault ~client:3 in
          List.init 200 (fun _ -> Net_fault.plan fault s)
        in
        Alcotest.(check bool) "replay is identical" true (draw () = draw ());
        (* a different client label is an independent stream *)
        let other =
          let s = Net_fault.stream fault ~client:4 in
          List.init 200 (fun _ -> Net_fault.plan fault s)
        in
        Alcotest.(check bool) "labels decorrelate" false (draw () = other));
    Alcotest.test_case "jitter stays within [0.5, 1.5)" `Quick (fun () ->
        let s = Net_fault.Stream.make ~seed:7 in
        for _ = 1 to 1000 do
          let j = Net_fault.Stream.jitter s in
          Alcotest.(check bool) "in range" true (j >= 0.5 && j < 1.5)
        done);
    Alcotest.test_case "from_env mirrors RAW_NET_FAULT_*" `Quick (fun () ->
        Unix.putenv "RAW_NET_FAULT_SEED" "99";
        Unix.putenv "RAW_NET_FAULT_CHAOS" "0.25";
        (match Net_fault.from_env () with
        | Some f ->
          Alcotest.(check int) "seed" 99 f.Net_fault.seed;
          Alcotest.(check (float 1e-9))
            "chaos" 0.25 f.Net_fault.chaos_per_request
        | None -> Alcotest.fail "seed set but from_env = None");
        Unix.putenv "RAW_NET_FAULT_SEED" "";
        Unix.putenv "RAW_NET_FAULT_CHAOS" "";
        Alcotest.(check bool)
          "unset seed disables" true (Net_fault.from_env () = None));
  ]

let suites =
  [
    ("server.chaos.protocol", protocol_suite);
    ("server.chaos.loris", loris_suite);
    ("server.chaos.shed", shed_suite);
    ("server.chaos.fuzz", fuzz_suite);
    ("server.chaos.determinism", determinism_suite);
  ]
