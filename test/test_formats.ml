open Raw_vector
open Raw_storage
open Raw_formats

let mmap_of_string s = Mmap_file.of_bytes ~name:"mem" (Bytes.of_string s)

(* ---------------- CSV parsers ---------------- *)

let b s = Bytes.of_string s

let csv_parser_tests =
  [
    Alcotest.test_case "parse_int basics" `Quick (fun () ->
        Alcotest.(check int) "plain" 123 (Csv.parse_int (b "123") 0 3);
        Alcotest.(check int) "negative" (-45) (Csv.parse_int (b "-45") 0 3);
        Alcotest.(check int) "plus" 45 (Csv.parse_int (b "+45") 0 3);
        Alcotest.(check int) "substring" 23 (Csv.parse_int (b "x23y") 1 2);
        Alcotest.(check int) "zero" 0 (Csv.parse_int (b "0") 0 1));
    Alcotest.test_case "parse_int failures" `Quick (fun () ->
        (* malformed user data raises the typed scan error, carrying the
           byte offset of the bad field *)
        let rejects name s off len =
          Alcotest.(check bool) name true
            (try
               ignore (Csv.parse_int (b s) off len);
               false
             with Scan_errors.Error e -> e.Scan_errors.offset = off)
        in
        rejects "empty" "" 0 0;
        rejects "bad digit" "12a" 0 3;
        rejects "lone sign" "-" 0 1);
    Alcotest.test_case "parse_float basics" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "int-ish" 42. (Csv.parse_float (b "42") 0 2);
        Alcotest.(check (float 1e-9)) "frac" 3.25 (Csv.parse_float (b "3.25") 0 4);
        Alcotest.(check (float 1e-9)) "neg" (-0.5) (Csv.parse_float (b "-0.5") 0 4));
    Alcotest.test_case "parse_float falls back for exponents" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "exp" 1500. (Csv.parse_float (b "1.5e3") 0 5));
    Alcotest.test_case "parse_float matches float_of_string on rendered values"
      `Quick (fun () ->
        let st = Random.State.make [| 7 |] in
        for _ = 1 to 200 do
          let x = Random.State.float st 1e9 in
          let s = Printf.sprintf "%.3f" x in
          Alcotest.(check (float 1e-9))
            s
            (float_of_string s)
            (Csv.parse_float (b s) 0 (String.length s))
        done);
    Alcotest.test_case "parse_bool variants" `Quick (fun () ->
        Alcotest.(check bool) "1" true (Csv.parse_bool (b "1") 0 1);
        Alcotest.(check bool) "0" false (Csv.parse_bool (b "0") 0 1);
        Alcotest.(check bool) "true" true (Csv.parse_bool (b "true") 0 4);
        Alcotest.(check bool) "FALSE" false (Csv.parse_bool (b "FALSE") 0 5));
    Alcotest.test_case "render_value formats" `Quick (fun () ->
        Alcotest.(check string) "int" "7" (Csv.render_value (Int 7));
        Alcotest.(check string) "float" "1.500" (Csv.render_value (Float 1.5));
        Alcotest.(check string) "bool" "1" (Csv.render_value (Bool true)));
  ]

(* ---------------- CSV cursor ---------------- *)

let cursor_tests =
  [
    Alcotest.test_case "walk fields of a row" `Quick (fun () ->
        let f = mmap_of_string "ab,c,def\nxy,z,w\n" in
        let cur = Csv.Cursor.create f in
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check (pair int int)) "field1" (0, 2) (p, l);
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check (pair int int)) "field2" (3, 1) (p, l);
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check (pair int int)) "field3" (5, 3) (p, l);
        Alcotest.(check bool) "at eol" true (Csv.Cursor.at_end_of_line cur);
        Csv.Cursor.skip_line cur;
        Alcotest.(check int) "next row" 9 (Csv.Cursor.pos cur));
    Alcotest.test_case "next_field at EOL yields empty field" `Quick (fun () ->
        (* a missing trailing field reads as empty; the cursor stays put *)
        let f = mmap_of_string "a\nb\n" in
        let cur = Csv.Cursor.create f in
        ignore (Csv.Cursor.next_field cur);
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check (pair int int)) "empty at eol" (1, 0) (p, l);
        Alcotest.(check int) "cursor unmoved" 1 (Csv.Cursor.pos cur);
        Csv.Cursor.skip_line cur;
        Alcotest.(check int) "next row" 2 (Csv.Cursor.pos cur));
    Alcotest.test_case "crlf and empty final field" `Quick (fun () ->
        let f = mmap_of_string "ab,\r\ncd,x\r\n" in
        let cur = Csv.Cursor.create f in
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check (pair int int)) "field1" (0, 2) (p, l);
        let _, l = Csv.Cursor.next_field cur in
        Alcotest.(check int) "empty final field" 0 l;
        Alcotest.(check bool) "at eol before CR" true
          (Csv.Cursor.at_end_of_line cur);
        Csv.Cursor.skip_line cur;
        Alcotest.(check int) "CRLF fully consumed" 5 (Csv.Cursor.pos cur);
        Csv.Cursor.skip_field cur;
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check string) "second row field" "x"
          (Bytes.sub_string (Mmap_file.bytes f) p l));
    Alcotest.test_case "row_aligned_ranges partition the file" `Quick (fun () ->
        let f = mmap_of_string "1,a\n22,bb\n333,ccc\n4,d\n5,e\n" in
        let len = Mmap_file.length f in
        List.iter
          (fun n ->
            let ranges = Csv.row_aligned_ranges f ~n in
            (* ordered, non-empty, contiguous, covering [0, len) *)
            let last =
              List.fold_left
                (fun expect (lo, hi) ->
                  Alcotest.(check int) "contiguous" expect lo;
                  Alcotest.(check bool) "non-empty" true (hi > lo);
                  (* each cut lands just past a newline *)
                  if lo > 0 then
                    Alcotest.(check char) "row-aligned" '\n'
                      (Bytes.get (Mmap_file.bytes f) (lo - 1));
                  hi)
                0 ranges
            in
            Alcotest.(check int) "covers file" len last)
          [ 1; 2; 3; 4; 16 ];
        Alcotest.(check (list (pair int int))) "empty file"
          []
          (Csv.row_aligned_ranges (mmap_of_string "") ~n:4));
    Alcotest.test_case "skip_fields and seek" `Quick (fun () ->
        let f = mmap_of_string "1,2,3,4\n" in
        let cur = Csv.Cursor.create f in
        Csv.Cursor.skip_fields cur 2;
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check string) "third" "3"
          (Bytes.sub_string (Mmap_file.bytes f) p l);
        Csv.Cursor.seek cur 2;
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check string) "after seek" "2"
          (Bytes.sub_string (Mmap_file.bytes f) p l));
    Alcotest.test_case "last field without trailing newline" `Quick (fun () ->
        let f = mmap_of_string "1,2" in
        let cur = Csv.Cursor.create f in
        Csv.Cursor.skip_field cur;
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check string) "tail field" "2"
          (Bytes.sub_string (Mmap_file.bytes f) p l);
        Alcotest.(check bool) "eof" true (Csv.Cursor.at_eof cur));
    Alcotest.test_case "custom separator" `Quick (fun () ->
        let f = mmap_of_string "a|b\n" in
        let cur = Csv.Cursor.create ~sep:'|' f in
        ignore (Csv.Cursor.next_field cur);
        let p, l = Csv.Cursor.next_field cur in
        Alcotest.(check string) "b" "b" (Bytes.sub_string (Mmap_file.bytes f) p l));
    Alcotest.test_case "count_rows" `Quick (fun () ->
        Alcotest.(check int) "terminated" 2 (Csv.count_rows (mmap_of_string "a\nb\n"));
        Alcotest.(check int) "unterminated" 2 (Csv.count_rows (mmap_of_string "a\nb"));
        Alcotest.(check int) "empty" 0 (Csv.count_rows (mmap_of_string "")));
    Alcotest.test_case "generate writes parseable rows" `Quick (fun () ->
        let path = Test_util.fresh_path ".csv" in
        Csv.generate ~path ~n_rows:10
          ~dtypes:[| Dtype.Int; Dtype.Float; Dtype.Bool; Dtype.String |]
          ~seed:3 ();
        let f = Mmap_file.open_file path in
        Alcotest.(check int) "rows" 10 (Csv.count_rows f);
        let cur = Csv.Cursor.create f in
        let buf = Mmap_file.bytes f in
        for _ = 1 to 10 do
          let p, l = Csv.Cursor.next_field cur in
          ignore (Csv.parse_int buf p l);
          let p, l = Csv.Cursor.next_field cur in
          ignore (Csv.parse_float buf p l);
          let p, l = Csv.Cursor.next_field cur in
          ignore (Csv.parse_bool buf p l);
          ignore (Csv.Cursor.next_field cur);
          Csv.Cursor.skip_line cur
        done;
        Alcotest.(check bool) "eof" true (Csv.Cursor.at_eof cur));
    Alcotest.test_case "generate is deterministic" `Quick (fun () ->
        let p1 = Test_util.fresh_path ".csv" and p2 = Test_util.fresh_path ".csv" in
        let dtypes = [| Dtype.Int; Dtype.Int |] in
        Csv.generate ~path:p1 ~n_rows:20 ~dtypes ~seed:9 ();
        Csv.generate ~path:p2 ~n_rows:20 ~dtypes ~seed:9 ();
        let read p = Bytes.to_string (Mmap_file.bytes (Mmap_file.open_file p)) in
        Alcotest.(check string) "identical" (read p1) (read p2));
  ]

(* ---------------- Posmap ---------------- *)

let build_map rows =
  (* rows: (col * pos * len) list list, tracked inferred from first row *)
  let tracked = List.map (fun (c, _, _) -> c) (List.hd rows) in
  let b = Posmap.Build.create ~tracked in
  List.iter
    (fun row ->
      List.iter (fun (col, pos, len) -> Posmap.Build.record b ~col ~pos ~len) row;
      Posmap.Build.end_row b)
    rows;
  Posmap.Build.finish b

let posmap_tests =
  [
    Alcotest.test_case "positions and lengths" `Quick (fun () ->
        let pm = build_map [ [ (0, 0, 2); (5, 10, 3) ]; [ (0, 20, 1); (5, 25, 4) ] ] in
        Alcotest.(check (array int)) "col0" [| 0; 20 |] (Posmap.positions pm 0);
        Alcotest.(check (array int)) "col5" [| 10; 25 |] (Posmap.positions pm 5);
        Alcotest.(check (option (array int))) "lens" (Some [| 3; 4 |]) (Posmap.lengths pm 5);
        Alcotest.(check int) "rows" 2 (Posmap.n_rows pm);
        Alcotest.(check int) "point" 25 (Posmap.position pm ~row:1 ~col:5));
    Alcotest.test_case "untracked column raises" `Quick (fun () ->
        let pm = build_map [ [ (0, 0, 1) ] ] in
        Alcotest.check_raises "untracked"
          (Invalid_argument "Posmap.positions: column 3 untracked") (fun () ->
            ignore (Posmap.positions pm 3)));
    Alcotest.test_case "nearest_at_or_before" `Quick (fun () ->
        let pm = build_map [ [ (0, 0, 1); (10, 5, 1); (20, 9, 1) ] ] in
        let check col expect =
          Alcotest.(check (option int)) (Printf.sprintf "col %d" col) expect
            (Option.map fst (Posmap.nearest_at_or_before pm col))
        in
        check 0 (Some 0);
        check 9 (Some 0);
        check 10 (Some 10);
        check 15 (Some 10);
        check 25 (Some 20));
    Alcotest.test_case "nearest before first tracked is None" `Quick (fun () ->
        let pm = build_map [ [ (5, 0, 1) ] ] in
        Alcotest.(check bool) "none" true (Posmap.nearest_at_or_before pm 3 = None));
    Alcotest.test_case "record out of order raises" `Quick (fun () ->
        let b = Posmap.Build.create ~tracked:[ 0; 5 ] in
        Alcotest.check_raises "wrong col"
          (Invalid_argument "Posmap.Build.record: column 5 out of order") (fun () ->
            Posmap.Build.record b ~col:5 ~pos:0 ~len:1));
    Alcotest.test_case "end_row with missing columns raises" `Quick (fun () ->
        let b = Posmap.Build.create ~tracked:[ 0; 5 ] in
        Posmap.Build.record b ~col:0 ~pos:0 ~len:1;
        Alcotest.check_raises "missing"
          (Invalid_argument "Posmap.Build.end_row: missing tracked columns")
          (fun () -> Posmap.Build.end_row b));
    Alcotest.test_case "every_k heuristic" `Quick (fun () ->
        Alcotest.(check (list int)) "every 10 of 30" [ 0; 10; 20 ]
          (Posmap.every_k ~k:10 ~n_cols:30);
        Alcotest.(check (list int)) "every 7 of 30" [ 0; 7; 14; 21; 28 ]
          (Posmap.every_k ~k:7 ~n_cols:30);
        Alcotest.check_raises "k=0" (Invalid_argument "Posmap.every_k: k must be positive")
          (fun () -> ignore (Posmap.every_k ~k:0 ~n_cols:5)));
    Alcotest.test_case "tracked dedup and sort" `Quick (fun () ->
        let b = Posmap.Build.create ~tracked:[ 5; 0; 5 ] in
        Alcotest.(check (array int)) "sorted" [| 0; 5 |] (Posmap.Build.tracked b));
  ]

(* ---------------- FWB ---------------- *)

let fwb_tests =
  [
    Alcotest.test_case "layout offsets" `Quick (fun () ->
        let l = Fwb.layout [| Dtype.Int; Dtype.Bool; Dtype.Float |] in
        Alcotest.(check int) "row size" 17 (Fwb.row_size l);
        Alcotest.(check int) "f0" 0 (Fwb.field_offset l 0);
        Alcotest.(check int) "f1" 8 (Fwb.field_offset l 1);
        Alcotest.(check int) "f2" 9 (Fwb.field_offset l 2);
        Alcotest.(check int) "offset_of" ((3 * 17) + 9)
          (Fwb.offset_of l ~row:3 ~field:2));
    Alcotest.test_case "string columns rejected" `Quick (fun () ->
        Alcotest.check_raises "string"
          (Invalid_argument "Fwb.layout: field 1 has variable-width type VARCHAR")
          (fun () -> ignore (Fwb.layout [| Dtype.Int; Dtype.String |])));
    Alcotest.test_case "write/read roundtrip" `Quick (fun () ->
        let l = Fwb.layout [| Dtype.Int; Dtype.Float; Dtype.Bool |] in
        let path = Test_util.fresh_path ".fwb" in
        let rows =
          [
            [| Value.Int (-7); Value.Float 2.5; Value.Bool true |];
            [| Value.Int max_int; Value.Float (-0.125); Value.Bool false |];
          ]
        in
        Fwb.write_file ~path l (List.to_seq rows);
        let f = Mmap_file.open_file path in
        Alcotest.(check int) "rows" 2 (Fwb.n_rows l f);
        Alcotest.(check int) "int" (-7) (Fwb.read_int f (Fwb.offset_of l ~row:0 ~field:0));
        Alcotest.(check int) "max_int" max_int
          (Fwb.read_int f (Fwb.offset_of l ~row:1 ~field:0));
        Alcotest.(check (float 0.)) "float" (-0.125)
          (Fwb.read_float f (Fwb.offset_of l ~row:1 ~field:1));
        Alcotest.(check bool) "bool" true
          (Fwb.read_bool f (Fwb.offset_of l ~row:0 ~field:2)));
    Alcotest.test_case "ragged file rejected" `Quick (fun () ->
        let l = Fwb.layout [| Dtype.Int |] in
        let f = Mmap_file.of_bytes ~name:"bad" (Bytes.make 12 '\000') in
        Alcotest.(check bool) "ragged" true
          (try
             ignore (Fwb.n_rows l f);
             false
           with Scan_errors.Error e ->
             e.Scan_errors.cause = "fwb: trailing bytes"
             && e.Scan_errors.offset = 8);
        Alcotest.(check int) "floor" 1 (Fwb.n_rows_floor l f);
        Alcotest.(check int) "trailing" 4 (Fwb.trailing_bytes l f));
    Alcotest.test_case "row arity mismatch raises" `Quick (fun () ->
        let l = Fwb.layout [| Dtype.Int; Dtype.Int |] in
        let path = Test_util.fresh_path ".fwb" in
        Alcotest.check_raises "arity" (Invalid_argument "Fwb.write_file: row arity mismatch")
          (fun () ->
            Fwb.write_file ~path l (List.to_seq [ [| Value.Int 1 |] ])));
    Alcotest.test_case "generate matches CSV twin data" `Quick (fun () ->
        let dtypes = [| Dtype.Int; Dtype.Float; Dtype.Int |] in
        let csv_path, fwb_path = Test_util.twin_files ~n_rows:30 ~dtypes ~seed:11 in
        let l = Fwb.layout dtypes in
        let ff = Mmap_file.open_file fwb_path in
        let cf = Mmap_file.open_file csv_path in
        let cur = Csv.Cursor.create cf in
        let buf = Mmap_file.bytes cf in
        for row = 0 to 29 do
          let p, len = Csv.Cursor.next_field cur in
          Alcotest.(check int) "int col" (Csv.parse_int buf p len)
            (Fwb.read_int ff (Fwb.offset_of l ~row ~field:0));
          let p, len = Csv.Cursor.next_field cur in
          Alcotest.(check (float 1e-9)) "float col" (Csv.parse_float buf p len)
            (Fwb.read_float ff (Fwb.offset_of l ~row ~field:1));
          let p, len = Csv.Cursor.next_field cur in
          Alcotest.(check int) "int col 2" (Csv.parse_int buf p len)
            (Fwb.read_int ff (Fwb.offset_of l ~row ~field:2));
          Csv.Cursor.skip_line cur
        done);
  ]

(* ---------------- HEP ---------------- *)

let sample_events =
  [
    {
      Hep.event_id = 0;
      run_number = 3;
      aux = [| 0.25; 0.5 |];
      muons = [| { Hep.pt = 30.; eta = 1.0; phi = 0.5 } |];
      electrons = [||];
      jets =
        [|
          { Hep.pt = 50.; eta = -1.5; phi = 2.0 };
          { Hep.pt = 20.; eta = 0.2; phi = -2.0 };
        |];
    };
    {
      Hep.event_id = 1;
      run_number = 7;
      aux = [||];
      muons = [||];
      electrons = [| { Hep.pt = 10.; eta = 2.0; phi = 1.0 } |];
      jets = [||];
    };
  ]

let write_sample () =
  let path = Test_util.fresh_path ".hep" in
  Hep.write_file ~path (List.to_seq sample_events);
  path

let hep_tests =
  [
    Alcotest.test_case "object roundtrip" `Quick (fun () ->
        let r = Hep.Reader.open_file (write_sample ()) in
        Alcotest.(check int) "n_events" 2 (Hep.Reader.n_events r);
        let e0 = Hep.Reader.get_entry r 0 in
        Alcotest.(check int) "run" 3 e0.run_number;
        Alcotest.(check int) "jets" 2 (Array.length e0.jets);
        Alcotest.(check (float 0.)) "jet pt" 20. e0.jets.(1).pt;
        let e1 = Hep.Reader.get_entry r 1 in
        Alcotest.(check int) "electrons" 1 (Array.length e1.electrons);
        Alcotest.(check (float 0.)) "el eta" 2.0 e1.electrons.(0).eta);
    Alcotest.test_case "field API agrees with object API" `Quick (fun () ->
        let r = Hep.Reader.open_file (write_sample ()) in
        Alcotest.(check int) "event_id" 1 (Hep.Reader.read_event_id r 1);
        Alcotest.(check int) "run" 7 (Hep.Reader.read_run_number r 1);
        Alcotest.(check int) "n jets e0" 2 (Hep.Reader.collection_length r 0 Hep.Jets);
        Alcotest.(check int) "n mu e1" 0 (Hep.Reader.collection_length r 1 Hep.Muons);
        Alcotest.(check (float 0.)) "jet1 phi" (-2.0)
          (Hep.Reader.read_particle_field r ~entry:0 Hep.Jets ~item:1 Hep.Phi);
        Alcotest.(check (float 0.)) "mu pt" 30.
          (Hep.Reader.read_particle_field r ~entry:0 Hep.Muons ~item:0 Hep.Pt));
    Alcotest.test_case "object cache hits on repeat" `Quick (fun () ->
        let r = Hep.Reader.open_file (write_sample ()) in
        ignore (Hep.Reader.get_entry r 0);
        ignore (Hep.Reader.get_entry r 0);
        Alcotest.(check int) "one miss" 1 (Hep.Reader.object_cache_misses r);
        Alcotest.(check int) "one hit" 1 (Hep.Reader.object_cache_hits r);
        Hep.Reader.clear_object_cache r;
        ignore (Hep.Reader.get_entry r 0);
        Alcotest.(check int) "miss after clear" 1 (Hep.Reader.object_cache_misses r));
    Alcotest.test_case "bounded object cache evicts" `Quick (fun () ->
        let r = Hep.Reader.open_file ~object_cache_capacity:1 (write_sample ()) in
        ignore (Hep.Reader.get_entry r 0);
        ignore (Hep.Reader.get_entry r 1);
        ignore (Hep.Reader.get_entry r 0);
        Alcotest.(check int) "all misses" 3 (Hep.Reader.object_cache_misses r));
    Alcotest.test_case "bad entry raises" `Quick (fun () ->
        let r = Hep.Reader.open_file (write_sample ()) in
        Alcotest.check_raises "range" (Invalid_argument "Hep.Reader: entry 2 out of range")
          (fun () -> ignore (Hep.Reader.get_entry r 2));
        Alcotest.check_raises "item range"
          (Invalid_argument "Hep.Reader.read_particle_field: item 5/1") (fun () ->
            ignore (Hep.Reader.read_particle_field r ~entry:0 Hep.Muons ~item:5 Hep.Pt)));
    Alcotest.test_case "not a HEP file" `Quick (fun () ->
        let path = Test_util.fresh_path ".hep" in
        let oc = open_out_bin path in
        output_string oc "definitely not a hep file";
        close_out oc;
        Alcotest.(check bool) "raises" true
          (try
             ignore (Hep.Reader.open_file path);
             false
           with Scan_errors.Error _ -> true));
    Alcotest.test_case "generate is deterministic and well-formed" `Quick (fun () ->
        let p1 = Test_util.fresh_path ".hep" in
        let p2 = Test_util.fresh_path ".hep" in
        Hep.generate ~path:p1 ~n_events:50 ~seed:5 ();
        Hep.generate ~path:p2 ~n_events:50 ~seed:5 ();
        let read p = Bytes.to_string (Mmap_file.bytes (Mmap_file.open_file p)) in
        Alcotest.(check string) "identical bytes" (read p1) (read p2);
        let r = Hep.Reader.open_file p1 in
        Alcotest.(check int) "n_events" 50 (Hep.Reader.n_events r);
        for e = 0 to 49 do
          let ev = Hep.Reader.get_entry r e in
          Alcotest.(check int) "sequential ids" e ev.event_id;
          Array.iter
            (fun (p : Hep.particle) ->
              Alcotest.(check bool) "pt positive" true (p.pt >= 0.);
              Alcotest.(check bool) "eta range" true (Float.abs p.eta <= 2.5))
            ev.muons
        done);
    Alcotest.test_case "empty file roundtrip" `Quick (fun () ->
        let path = Test_util.fresh_path ".hep" in
        Hep.write_file ~path Seq.empty;
        let r = Hep.Reader.open_file path in
        Alcotest.(check int) "no events" 0 (Hep.Reader.n_events r));
  ]

let suites =
  [
    ("formats.csv_parsers", csv_parser_tests);
    ("formats.csv_cursor", cursor_tests);
    ("formats.posmap", posmap_tests);
    ("formats.fwb", fwb_tests);
    ("formats.hep", hep_tests);
  ]
