(* Fault tolerance: golden runs over the malformed-input corpus under the
   three error policies, byte-mutation property tests, deterministic media-
   fault injection, and positional-map row identity across morsel
   boundaries when rows are skipped.

   The corpus lives in test/corpus/ (declared as dune deps, so paths are
   relative to the test's working directory):
   - trunc_quote.csv  : last row truncated mid-quoted-string, missing the
                        trailing float field, no final newline
   - crlf_ragged.csv  : CRLF line endings; one row with a non-numeric int
                        field, one short row missing its last field
   - bad.jsonl        : bad \u escape, raw invalid UTF-8 (accepted — the
                        scanner is byte-transparent), a string where the
                        schema expects a float, a row truncated mid-object
   - ragged.fwb       : layout int,float — five whole rows then 7 trailing
                        bytes (a torn final row)
   - bad_index.hep    : eight events; index slots 3 and 5 point past EOF *)

open Raw_vector
open Raw_storage
open Raw_formats
open Raw_core
open Test_util

let corpus name = Filename.concat "corpus" name

let db_with ?(policy = Scan_errors.Fail_fast) ?(parallelism = 1) register =
  let config = { Config.default with Config.parallelism; on_error = policy } in
  let db = Raw_db.create ~config () in
  register db;
  db

let as_int = function
  | Value.Int n -> n
  | v -> Alcotest.failf "expected an int, got %a" Value.pp v

let errors_of (r : Executor.report) = r.errors

let check_sample ~offset ~field ~cause (s : Scan_errors.sample) =
  Alcotest.(check int) "sample offset" offset s.Scan_errors.offset;
  Alcotest.(check int) "sample field" field s.Scan_errors.field;
  Alcotest.(check string) "sample cause" cause s.Scan_errors.cause

let expect_data_error ~cause db sql =
  match Raw_db.query db sql with
  | (_ : Executor.report) ->
    Alcotest.failf "%s: expected Scan_errors.Error %S" sql cause
  | exception Scan_errors.Error e ->
    Alcotest.(check string) "fail-fast cause" cause e.Scan_errors.cause

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Corpus goldens                                                      *)
(* ------------------------------------------------------------------ *)

let reg_trunc db =
  Raw_db.register_csv db ~name:"t" ~path:(corpus "trunc_quote.csv")
    ~columns:
      [ ("id", Dtype.Int); ("name", Dtype.String); ("score", Dtype.Float) ]
    ()

let reg_crlf db =
  Raw_db.register_csv db ~name:"t" ~path:(corpus "crlf_ragged.csv")
    ~columns:[ ("a", Dtype.Int); ("b", Dtype.Int); ("c", Dtype.Int) ]
    ()

let reg_jsonl db =
  Raw_db.register_jsonl db ~name:"t" ~path:(corpus "bad.jsonl")
    ~columns:
      [ ("id", Dtype.Int); ("name", Dtype.String); ("val", Dtype.Float) ]

let reg_fwb db =
  Raw_db.register_fwb db ~name:"t" ~path:(corpus "ragged.fwb")
    ~columns:[ ("k", Dtype.Int); ("x", Dtype.Float) ]

let reg_hep db = Raw_db.register_hep db ~name_prefix:"atlas" ~path:(corpus "bad_index.hep")

let corpus_tests =
  [
    Alcotest.test_case "trunc_quote.csv: fail_fast raises typed error" `Quick
      (fun () ->
        expect_data_error ~cause:"bad float" (db_with reg_trunc)
          "SELECT SUM(score) FROM t");
    Alcotest.test_case "trunc_quote.csv: skip_row drops the torn row" `Quick
      (fun () ->
        let db = db_with ~policy:Scan_errors.Skip_row reg_trunc in
        check_value "count" (Value.Int 6)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Skip_row reg_trunc)
            "SELECT SUM(score) FROM t"
        in
        check_value "sum" (Value.Float 24.0) (scalar_of r);
        let errs = errors_of r in
        Alcotest.(check bool) "errors recorded" true (errs.total > 0);
        (* the torn row starts at byte 72; its missing field is the float *)
        check_sample ~offset:72 ~field:2 ~cause:"bad float"
          (List.hd errs.samples));
    Alcotest.test_case "trunc_quote.csv: null_fill keeps the physical row"
      `Quick (fun () ->
        let db = db_with ~policy:Scan_errors.Null_fill reg_trunc in
        check_value "count" (Value.Int 7)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Null_fill reg_trunc)
            "SELECT SUM(score) FROM t"
        in
        (* the NULL score is ignored by the aggregate *)
        check_value "sum" (Value.Float 24.0) (scalar_of r);
        Alcotest.(check int) "one error" 1 (errors_of r).total);
    Alcotest.test_case "crlf_ragged.csv: fail_fast raises typed error" `Quick
      (fun () ->
        expect_data_error ~cause:"bad int" (db_with reg_crlf)
          "SELECT SUM(b) FROM t");
    Alcotest.test_case "crlf_ragged.csv: skip_row validates all columns"
      `Quick (fun () ->
        let db = db_with ~policy:Scan_errors.Skip_row reg_crlf in
        (* both the bad-int row and the short row are dropped, whatever
           columns the query touches *)
        check_value "count" (Value.Int 6)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Skip_row reg_crlf)
            "SELECT SUM(c) FROM t"
        in
        check_value "sum" (Value.Int 75) (scalar_of r);
        (* two bad rows, each seen by the sizing pass and the scan pass *)
        let errs = errors_of r in
        Alcotest.(check int) "errors" 4 errs.total;
        Alcotest.(check (list (pair string int)))
          "by cause" [ ("bad int", 4) ] errs.by_cause;
        check_sample ~offset:21 ~field:1 ~cause:"bad int"
          (List.hd errs.samples));
    Alcotest.test_case "crlf_ragged.csv: null_fill nulls only touched fields"
      `Quick (fun () ->
        let db = db_with ~policy:Scan_errors.Null_fill reg_crlf in
        check_value "count" (Value.Int 8)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Null_fill reg_crlf)
            "SELECT SUM(c) FROM t"
        in
        check_value "sum" (Value.Int 81) (scalar_of r);
        (* only the short row's missing c is decoded; the bad b is never
           touched by this query *)
        let errs = errors_of r in
        Alcotest.(check int) "errors" 1 errs.total;
        check_sample ~offset:50 ~field:2 ~cause:"bad int"
          (List.hd errs.samples));
    Alcotest.test_case "bad.jsonl: fail_fast raises typed error" `Quick
      (fun () ->
        expect_data_error ~cause:"json: string value in Float column"
          (db_with reg_jsonl) "SELECT SUM(val) FROM t");
    Alcotest.test_case "bad.jsonl: skip_row keeps raw invalid UTF-8" `Quick
      (fun () ->
        (* rows survive iff every schema column decodes: the bad \u escape,
           the string-for-float and the truncated object are dropped; the
           raw invalid-UTF-8 name is accepted (byte-transparent strings) *)
        let db = db_with ~policy:Scan_errors.Skip_row reg_jsonl in
        check_value "count" (Value.Int 3)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Skip_row reg_jsonl)
            "SELECT SUM(val) FROM t"
        in
        check_value "sum" (Value.Float 11.5) (scalar_of r);
        let errs = errors_of r in
        Alcotest.(check int) "errors" 3 errs.total;
        Alcotest.(check (list string)) "causes"
          [
            "json: bad \\u escape";
            "json: expected ',' or '}'";
            "json: string value in non-string column";
          ]
          (List.map fst errs.by_cause));
    Alcotest.test_case "bad.jsonl: null_fill keeps all physical rows" `Quick
      (fun () ->
        let db = db_with ~policy:Scan_errors.Null_fill reg_jsonl in
        check_value "count" (Value.Int 6)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t");
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Null_fill reg_jsonl)
            "SELECT SUM(val) FROM t"
        in
        check_value "sum" (Value.Float 14.0) (scalar_of r);
        (* the bad name escape is not an error here: val never touches it *)
        Alcotest.(check int) "errors" 2 (errors_of r).total);
    Alcotest.test_case "ragged.fwb: fail_fast raises typed error" `Quick
      (fun () ->
        expect_data_error ~cause:"fwb: trailing bytes" (db_with reg_fwb)
          "SELECT COUNT(*) FROM t");
    Alcotest.test_case "ragged.fwb: lenient policies floor the row count"
      `Quick (fun () ->
        List.iter
          (fun policy ->
            let db = db_with ~policy reg_fwb in
            check_value "count" (Value.Int 5)
              (Raw_db.scalar db "SELECT COUNT(*) FROM t");
            let r =
              Raw_db.query (db_with ~policy reg_fwb) "SELECT SUM(x) FROM t"
            in
            check_value "sum" (Value.Float 7.5) (scalar_of r);
            let errs = errors_of r in
            Alcotest.(check bool) "errors recorded" true (errs.total > 0);
            check_sample ~offset:80 ~field:(-1) ~cause:"fwb: trailing bytes"
              (List.hd errs.samples))
          [ Scan_errors.Skip_row; Scan_errors.Null_fill ]);
    Alcotest.test_case "bad_index.hep: fail_fast raises typed error" `Quick
      (fun () ->
        expect_data_error ~cause:"hep: read past EOF" (db_with reg_hep)
          "SELECT SUM(pt) FROM atlas_muons");
    Alcotest.test_case "bad_index.hep: lenient policies enumerate valid entries"
      `Quick (fun () ->
        (* a corrupt event record has no recoverable fields, so Null_fill
           degrades to Skip_row for HEP: both enumerate the valid entries *)
        List.iter
          (fun policy ->
            let db = db_with ~policy reg_hep in
            let r = Raw_db.query db "SELECT COUNT(*) FROM atlas_events" in
            check_value "count" (Value.Int 6) (scalar_of r);
            let errs = errors_of r in
            Alcotest.(check int) "errors" 2 errs.total;
            (* index slots of the two corrupt entries: 792 + 8*{3,5} *)
            check_sample ~offset:816 ~field:(-1)
              ~cause:"hep: corrupt event record" (List.hd errs.samples);
            check_sample ~offset:832 ~field:(-1)
              ~cause:"hep: corrupt event record" (List.nth errs.samples 1);
            check_value "sum pt" (Value.Float 80.0)
              (Raw_db.scalar db "SELECT SUM(pt) FROM atlas_muons"))
          [ Scan_errors.Skip_row; Scan_errors.Null_fill ]);
    Alcotest.test_case "report: tolerated errors render in pp_report" `Quick
      (fun () ->
        let r =
          Raw_db.query
            (db_with ~policy:Scan_errors.Skip_row reg_crlf)
            "SELECT SUM(c) FROM t"
        in
        let s = Format.asprintf "%a" Executor.pp_report r in
        Alcotest.(check bool) "mentions scan errors" true
          (contains s "scan error");
        Alcotest.(check bool) "attributes offset and field" true
          (contains s "offset 21 field 1"));
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)
(* ------------------------------------------------------------------ *)

let small_pages = { Mmap_file.Config.default with Mmap_file.Config.page_size = 256 }

let snapshot_testable =
  Alcotest.testable Scan_errors.pp_snapshot (fun a b -> a = b)

let injection_tests =
  [
    Alcotest.test_case "same seed corrupts the same bytes" `Quick (fun () ->
        let data = Bytes.of_string (String.concat "\n" (List.init 200 string_of_int)) in
        let fault = Mmap_file.Fault.make ~seed:42 ~flip_per_page:1.0 () in
        let open1 () =
          Mmap_file.of_bytes ~config:small_pages ~fault ~name:"f.csv" data
        in
        let a = open1 () and b = open1 () in
        Alcotest.(check bool) "flips applied" true (Mmap_file.injected_flips a > 0);
        Alcotest.(check string) "identical corruption"
          (Bytes.to_string (Mmap_file.bytes a))
          (Bytes.to_string (Mmap_file.bytes b));
        (* the caller's buffer is never mutated in place *)
        Alcotest.(check bool) "source intact" false
          (Bytes.to_string (Mmap_file.bytes a) = Bytes.to_string data));
    Alcotest.test_case "fault filter: only matching names corrupted" `Quick
      (fun () ->
        let fault =
          Mmap_file.Fault.make ~seed:7 ~flip_per_page:1.0 ~truncate_pages:1
            ~only:"fault_" ()
        in
        Alcotest.(check bool) "matches" true
          (Mmap_file.Fault.applies fault ~name:"fault_data.csv");
        Alcotest.(check bool) "skips" false
          (Mmap_file.Fault.applies fault ~name:"clean.csv"));
    Alcotest.test_case "env-driven injection tolerated by lenient scans"
      `Quick (fun () ->
        (* This file's name contains "fault_", so when CI exports
           RAW_FAULT_SEED/RAW_FAULT_FLIP/RAW_FAULT_ONLY=fault_ the open
           below (no explicit ?fault) corrupts it deterministically; in a
           plain run it is clean. Either way the lenient policies must
           scan it without raising and never invent rows. *)
        let path = fresh_path "_fault_env.csv" in
        let oc = open_out_bin path in
        for i = 0 to 499 do
          Printf.fprintf oc "%d,%d\n" i (i * 3)
        done;
        close_out oc;
        let schema = Schema.of_pairs [ ("a", Dtype.Int); ("b", Dtype.Int) ] in
        List.iter
          (fun policy ->
            Scan_errors.reset ();
            let file = Mmap_file.open_file ~config:small_pages path in
            let cols, _ =
              Scan_csv.seq_scan ~mode:Scan_csv.Interpreted ~policy ~file
                ~sep:',' ~schema ~needed:[ 0; 1 ] ~tracked:[] ()
            in
            Scan_errors.reset ();
            Alcotest.(check bool) "row count bounded" true
              (Column.length cols.(0) <= 500))
          [ Scan_errors.Skip_row; Scan_errors.Null_fill ]);
    Alcotest.test_case "par scan == seq scan under injected faults" `Quick
      (fun () ->
        let path = fresh_path ".csv" in
        Csv.generate ~path ~n_rows:2000
          ~dtypes:[| Dtype.Int; Dtype.Float; Dtype.Int |]
          ~seed:7 ();
        let fault =
          Mmap_file.Fault.make ~seed:11 ~flip_per_page:0.8 ~truncate_pages:1 ()
        in
        let schema =
          Schema.of_pairs
            [ ("a", Dtype.Int); ("x", Dtype.Float); ("b", Dtype.Int) ]
        in
        let run policy scanner =
          Scan_errors.reset ();
          let file = Mmap_file.open_file ~config:small_pages ~fault path in
          Alcotest.(check bool) "faults injected" true
            (Mmap_file.injected_flips file > 0
            && Mmap_file.injected_truncated_bytes file > 0);
          let cols, _ = scanner ~policy ~file in
          let errs = Scan_errors.snapshot () in
          Scan_errors.reset ();
          (cols, errs)
        in
        List.iter
          (fun policy ->
            let seq =
              run policy (fun ~policy ~file ->
                  Scan_csv.seq_scan ~mode:Scan_csv.Interpreted ~policy ~file
                    ~sep:',' ~schema ~needed:[ 0; 1; 2 ] ~tracked:[] ())
            in
            let par =
              run policy (fun ~policy ~file ->
                  Scan_csv.par_scan ~mode:Scan_csv.Jit ~policy ~parallelism:4
                    ~file ~sep:',' ~schema ~needed:[ 0; 1; 2 ] ~tracked:[] ())
            in
            let (cols_s, errs_s), (cols_p, errs_p) = (seq, par) in
            Alcotest.(check bool) "errors observed" true (errs_s.total > 0);
            Alcotest.check snapshot_testable "identical error snapshots"
              errs_s errs_p;
            Array.iteri
              (fun k c -> check_column "identical columns" c cols_p.(k))
              cols_s)
          [ Scan_errors.Skip_row; Scan_errors.Null_fill ]);
  ]

(* ------------------------------------------------------------------ *)
(* Posmap row identity across morsel boundaries                        *)
(* ------------------------------------------------------------------ *)

(* 400 fixed-ish-width rows, every 50th malformed: parallelism-4 morsel
   boundaries land inside runs containing skipped rows, so this exercises
   Posmap.concat over segments whose row counts differ from the raw line
   counts of their byte ranges. *)
let posmap_tests =
  [
    Alcotest.test_case "skip_row: par posmap == seq posmap, fetch agrees"
      `Quick (fun () ->
        let path = fresh_path ".csv" in
        let oc = open_out_bin path in
        for i = 0 to 399 do
          if i mod 50 = 0 then Printf.fprintf oc "%d,xx\n" i
          else Printf.fprintf oc "%d,%d\n" i (i * 7)
        done;
        close_out oc;
        let schema = Schema.of_pairs [ ("a", Dtype.Int); ("b", Dtype.Int) ] in
        let scan scanner =
          Scan_errors.reset ();
          let r = scanner () in
          Scan_errors.reset ();
          r
        in
        let file_s = Mmap_file.open_file path in
        let cols_s, pm_s =
          scan (fun () ->
              Scan_csv.seq_scan ~mode:Scan_csv.Interpreted
                ~policy:Scan_errors.Skip_row ~file:file_s ~sep:',' ~schema
                ~needed:[ 0; 1 ] ~tracked:[ 0; 1 ] ())
        in
        let file_p = Mmap_file.open_file path in
        let cols_p, pm_p =
          scan (fun () ->
              Scan_csv.par_scan ~mode:Scan_csv.Jit
                ~policy:Scan_errors.Skip_row ~parallelism:4 ~file:file_p
                ~sep:',' ~schema ~needed:[ 0; 1 ] ~tracked:[ 0; 1 ] ())
        in
        let survivors =
          List.filter (fun i -> i mod 50 <> 0) (List.init 400 Fun.id)
        in
        check_column "column a"
          (Column.of_int_array (Array.of_list survivors))
          cols_s.(0);
        check_column "column b"
          (Column.of_int_array
             (Array.of_list (List.map (fun i -> i * 7) survivors)))
          cols_s.(1);
        Array.iteri
          (fun k c -> check_column "par == seq column" c cols_p.(k))
          cols_s;
        let pm_s = Option.get pm_s and pm_p = Option.get pm_p in
        Alcotest.(check int) "posmap rows" (List.length survivors)
          (Posmap.n_rows pm_s);
        Alcotest.(check int) "par posmap rows" (Posmap.n_rows pm_s)
          (Posmap.n_rows pm_p);
        List.iter
          (fun col ->
            Alcotest.(check (array int)) "positions align"
              (Posmap.positions pm_s col)
              (Posmap.positions pm_p col))
          [ 0; 1 ];
        (* row identity end-to-end: fetching b through the stitched par
           posmap returns the same values the scan produced *)
        let rowids = [| 0; 1; 49; 50; 99; 195; 391 |] in
        let fetched =
          Scan_csv.fetch ~mode:Scan_csv.Jit ~file:file_p ~sep:',' ~schema
            ~posmap:pm_p ~cols:[ 1 ] ~rowids ()
        in
        check_column "fetch through posmap"
          (Column.of_int_array
             (Array.map (fun r -> (List.nth survivors r) * 7) rowids))
          fetched.(0));
    Alcotest.test_case "row_aligned_ranges partition the file" `Quick
      (fun () ->
        let path = fresh_path ".csv" in
        let oc = open_out_bin path in
        for i = 0 to 399 do
          Printf.fprintf oc "%d,%d\n" i (i * 7)
        done;
        close_out oc;
        let file = Mmap_file.open_file path in
        let ranges = Csv.row_aligned_ranges file ~n:4 in
        let rec check_contiguous at = function
          | [] -> Alcotest.(check int) "covers file" (Mmap_file.length file) at
          | (lo, hi) :: rest ->
            Alcotest.(check int) "contiguous" at lo;
            Alcotest.(check bool) "non-empty" true (hi > lo);
            check_contiguous hi rest
        in
        check_contiguous 0 ranges);
  ]

(* ------------------------------------------------------------------ *)
(* Byte-mutation properties                                            *)
(* ------------------------------------------------------------------ *)

let clean_csv ~n ~m =
  String.concat ""
    (List.init n (fun r ->
         String.concat ","
           (List.init m (fun c -> string_of_int ((r * 100) + c)))
         ^ "\n"))

(* Mutations never touch row structure: positions holding '\n'/'\r' are
   left alone and replacement bytes are printable ASCII, so the physical
   row count is invariant and the policies' row-count contracts are exact. *)
let prop_tests =
  let n = 30 and m = 3 in
  let clean = clean_csv ~n ~m in
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 12)
        (pair (int_bound (String.length clean - 1)) (int_range 33 126)))
  in
  let mutate muts =
    let b = Bytes.of_string clean in
    List.iter
      (fun (pos, c) ->
        match Bytes.get b pos with
        | '\n' | '\r' -> ()
        | _ -> Bytes.set b pos (Char.chr c))
      muts;
    Bytes.to_string b
  in
  let query_counts policy data =
    let path = fresh_path ".csv" in
    let oc = open_out_bin path in
    output_string oc data;
    close_out oc;
    let db =
      db_with ~policy (fun db ->
          Raw_db.register_csv db ~name:"t" ~path ~columns:(int_cols m) ())
    in
    let count = as_int (Raw_db.scalar db "SELECT COUNT(*) FROM t") in
    (* also drive a real scan + aggregate over the mutated bytes *)
    let (_ : Executor.report) = Raw_db.query db "SELECT SUM(col2) FROM t" in
    count
  in
  [
    qtest ~count:60 "mutations: skip_row never raises, never adds rows" gen
      (fun muts ->
        let rows = query_counts Scan_errors.Skip_row (mutate muts) in
        rows >= 0 && rows <= n);
    qtest ~count:60 "mutations: null_fill never raises, keeps physical rows"
      gen (fun muts ->
        query_counts Scan_errors.Null_fill (mutate muts) = n);
  ]

let suites =
  [
    ("faults:corpus", corpus_tests);
    ("faults:injection", injection_tests);
    ("faults:posmap", posmap_tests);
    ("faults:props", prop_tests);
  ]
