(* Online aggregation (PR 7), proven correct rather than plausible:
   permutation properties of the sampling order, unit tests of the
   streaming ratio estimator, a 200-run statistical coverage harness
   against known ground truth, differential exactness (approx driven to
   100% is bit-identical to the exact engine, per format / error policy /
   parallelism), config validation, and the exit semantics separating an
   approx early stop (success) from governance cancellation. *)

open Raw_vector
open Raw_storage
open Raw_engine
open Raw_core

let approx_config ?(eps = 0.05) ?(seed = 42) ?(chunk_rows = 64) ?(par = 1)
    ?(on_error = Scan_errors.Fail_fast) () =
  {
    Config.default with
    Config.approx = Some eps;
    approx_seed = seed;
    chunk_rows;
    parallelism = par;
    on_error;
  }

let exact_config ?(chunk_rows = 64) ?(par = 1)
    ?(on_error = Scan_errors.Fail_fast) () =
  { Config.default with Config.chunk_rows = chunk_rows; parallelism = par; on_error }

let info_of (report : Executor.report) =
  match report.Executor.approx with
  | Some info -> info
  | None -> Alcotest.fail "expected an approx account in the report"

(* ------------------------------------------------------------------ *)
(* The sampling permutation                                            *)
(* ------------------------------------------------------------------ *)

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun x -> x >= 0 && x < n && not seen.(x) && (seen.(x) <- true; true))
    a

let sampling_suite =
  [
    Alcotest.test_case "permutation at adversarial sizes" `Quick (fun () ->
        (* empty, singleton, pair, power of two, prime, big power of two *)
        List.iter
          (fun n ->
            let p = Sampling.permutation ~seed:42 n in
            Alcotest.(check int) (Printf.sprintf "length %d" n) n
              (Array.length p);
            Alcotest.(check bool)
              (Printf.sprintf "true permutation at n=%d" n)
              true (is_permutation p))
          [ 0; 1; 2; 64; 97; 4096 ]);
    Alcotest.test_case "pure function of (seed, n)" `Quick (fun () ->
        Alcotest.(check (array int))
          "same seed, same order"
          (Sampling.permutation ~seed:7 1000)
          (Sampling.permutation ~seed:7 1000);
        Alcotest.(check bool)
          "different seeds diverge" true
          (Sampling.permutation ~seed:1 256 <> Sampling.permutation ~seed:2 256);
        (* actually shuffled, not the identity *)
        Alcotest.(check bool)
          "seed 42 moves something" true
          (Sampling.permutation ~seed:42 256 <> Array.init 256 Fun.id));
    Alcotest.test_case "negative size rejected" `Quick (fun () ->
        Alcotest.check_raises "n = -1"
          (Invalid_argument "Sampling.permutation: negative size")
          (fun () -> ignore (Sampling.permutation ~seed:1 (-1))));
    Test_util.qtest "every (seed, n) yields a permutation"
      QCheck2.Gen.(pair (int_range 0 300) (int_range 0 1_000_000))
      (fun (n, seed) -> is_permutation (Sampling.permutation ~seed n));
  ]

(* ------------------------------------------------------------------ *)
(* The estimator in isolation                                          *)
(* ------------------------------------------------------------------ *)

(* deterministic pseudo-random morsel stream, no Random dependency *)
let synth_morsel i =
  let rows = 64 in
  let qualifying = 20 + (i * 37 mod 25) in
  let sum = float_of_int (qualifying * 50 + (i * 13 mod 100)) in
  (rows, qualifying, sum)

let estimator_suite =
  [
    Alcotest.test_case "unfiltered COUNT is exact after the floor" `Quick
      (fun () ->
        (* y_i = x_i for every morsel: the ratio estimator has zero
           variance, so the bound collapses the moment the min-morsel
           floor is reached — no degenerate wide-CI phase *)
        let est =
          Estimator.create ~eps:0.05 ~total_rows:6400 ~total_morsels:100
            [ Estimator.Count ]
        in
        for _ = 1 to 16 do
          Estimator.observe est ~rows:64
            [ { Estimator.c_sum = 0.; c_count = 64. } ]
        done;
        Alcotest.(check bool) "converged at the floor" true
          (Estimator.converged est);
        let b = List.hd (Estimator.bands est) in
        Alcotest.(check (float 1e-9)) "estimate is the full count" 6400.
          b.Estimator.estimate;
        Alcotest.(check (float 1e-9)) "zero half-width" 0.
          b.Estimator.half_width);
    Alcotest.test_case "half-width envelope is monotone non-increasing"
      `Quick (fun () ->
        let est =
          Estimator.create ~eps:0.0001 ~total_rows:(64 * 200)
            ~total_morsels:200
            [ Estimator.Count; Estimator.Sum; Estimator.Avg ]
        in
        let prev = ref [ infinity; infinity; infinity ] in
        for i = 0 to 199 do
          let rows, q, sum = synth_morsel i in
          Estimator.observe est ~rows
            [
              { Estimator.c_sum = 0.; c_count = float_of_int q };
              { Estimator.c_sum = sum; c_count = float_of_int q };
              { Estimator.c_sum = sum; c_count = float_of_int q };
            ];
          let widths =
            List.map (fun b -> b.Estimator.half_width) (Estimator.bands est)
          in
          List.iter2
            (fun w p ->
              Alcotest.(check bool)
                (Printf.sprintf "width %g <= %g after morsel %d" w p i)
                true (w <= p +. 1e-12))
            widths !prev;
          prev := widths
        done;
        (* the full sample is the population: bounds collapse to zero *)
        List.iter
          (fun b ->
            Alcotest.(check (float 1e-6)) "exhausted sample has no width" 0.
              b.Estimator.half_width)
          (Estimator.bands est));
    Alcotest.test_case "no convergence before the morsel floor" `Quick
      (fun () ->
        let est =
          Estimator.create ~eps:0.5 ~total_rows:6400 ~total_morsels:100
            [ Estimator.Count ]
        in
        for _ = 1 to 15 do
          Estimator.observe est ~rows:64
            [ { Estimator.c_sum = 0.; c_count = 64. } ]
        done;
        Alcotest.(check bool) "15 < min_morsels" false
          (Estimator.converged est));
    Alcotest.test_case "create rejects a non-positive eps" `Quick (fun () ->
        Alcotest.check_raises "eps = 0"
          (Invalid_argument "Estimator.create: eps must be > 0")
          (fun () ->
            ignore
              (Estimator.create ~eps:0. ~total_rows:1 ~total_morsels:1
                 [ Estimator.Count ])));
  ]

(* ------------------------------------------------------------------ *)
(* Statistical coverage: the 95% CI must contain the truth             *)
(* ------------------------------------------------------------------ *)

(* One generated FWB file shared by the coverage and semantics suites:
   8192 rows of (int uniform [0, 1e9), float uniform [0, 1e9)), scanned
   as 128 morsels of 64 rows. *)
let coverage_dtypes = [| Dtype.Int; Dtype.Float |]

let coverage_path =
  lazy
    (let path = Test_util.fresh_path ".fwb" in
     Raw_formats.Fwb.generate ~path ~n_rows:8192 ~dtypes:coverage_dtypes
       ~seed:11 ();
     path)

let coverage_db config =
  let db = Raw_db.create ~config () in
  Raw_db.register_fwb db ~name:"t" ~path:(Lazy.force coverage_path)
    ~columns:[ ("col0", Dtype.Int); ("col1", Dtype.Float) ];
  db

let coverage_query =
  "SELECT COUNT(*), SUM(col1), AVG(col1) FROM t WHERE col0 < 500000000"

let float_of_value = function
  | Value.Int n -> float_of_int n
  | Value.Float f -> f
  | v -> Alcotest.failf "non-numeric cell %s" (Value.to_string v)

let coverage_suite =
  [
    Alcotest.test_case "95% CI contains ground truth in >= 90% of 200 seeds"
      `Slow (fun () ->
        let truth_chunk = Raw_db.sql (coverage_db (exact_config ())) coverage_query in
        let truth =
          List.init 3 (fun i -> float_of_value (Column.get (Chunk.column truth_chunk i) 0))
        in
        let runs = 200 in
        let covered = Array.make 3 0 in
        let fractions = ref 0. in
        for seed = 0 to runs - 1 do
          let report =
            Raw_db.query (coverage_db (approx_config ~eps:0.05 ~seed ())) coverage_query
          in
          let info = info_of report in
          fractions := !fractions +. Approx.fraction info;
          List.iteri
            (fun i (b : Approx.band) ->
              let t = List.nth truth i in
              (* tiny absolute slack so float rounding at the boundary
                 cannot flip a verdict *)
              if Float.abs (b.Approx.estimate -. t)
                 <= b.Approx.half_width +. (1e-9 *. Float.abs t)
              then covered.(i) <- covered.(i) + 1)
            info.Approx.bands
        done;
        Array.iteri
          (fun i c ->
            let agg = List.nth [ "count"; "sum"; "avg" ] i in
            if c < runs * 9 / 10 then
              Alcotest.failf "%s: truth covered in only %d/%d runs" agg c runs)
          covered;
        (* the harness is pointless if every run just scanned the file *)
        Alcotest.(check bool) "sampling actually stops early" true
          (!fractions /. float_of_int runs < 0.9));
  ]

(* ------------------------------------------------------------------ *)
(* Differential exactness at 100%                                      *)
(* ------------------------------------------------------------------ *)

(* eps so tight the sample always exhausts the file: the reported chunk
   must then be BIT-identical to the exact engine's — same formats, same
   error policies, same parallelism levels. *)
let tiny_eps = 1e-9

let differential_case ~policy ~par register query =
  let exact_db = Raw_db.create ~config:(exact_config ~par ~on_error:policy ()) () in
  register exact_db;
  let expected = Raw_db.sql exact_db query in
  let adb =
    Raw_db.create
      ~config:(approx_config ~eps:tiny_eps ~par ~on_error:policy ())
      ()
  in
  register adb;
  let report = Raw_db.query adb query in
  let info = info_of report in
  Alcotest.(check bool) "file was exhausted" true info.Approx.exact;
  Alcotest.(check int) "all morsels sampled" info.Approx.morsels_total
    info.Approx.morsels_sampled;
  Test_util.check_chunk "bit-identical to the exact engine" expected
    report.Executor.chunk;
  (* finalize_exact stamped the exact values into the bands *)
  List.iteri
    (fun i (b : Approx.band) ->
      Alcotest.(check (float 0.))
        (b.Approx.name ^ " band agrees with the chunk")
        (float_of_value (Column.get (Chunk.column expected i) 0))
        b.Approx.estimate;
      Alcotest.(check (float 0.)) (b.Approx.name ^ " zero width") 0.
        b.Approx.half_width)
    info.Approx.bands

let differential_suite =
  let csv_path, fwb_path =
    lazy (Test_util.twin_files ~n_rows:700 ~dtypes:[| Dtype.Int; Dtype.Float |] ~seed:5)
    |> fun l -> (lazy (fst (Lazy.force l)), lazy (snd (Lazy.force l)))
  in
  let jsonl_path =
    lazy
      (let path = Test_util.fresh_path ".jsonl" in
       Raw_formats.Jsonl.generate ~path ~n_rows:700
         ~fields:[ ("a", Dtype.Int); ("x", Dtype.Float) ]
         ~seed:5 ();
       path)
  in
  let hep_path =
    lazy
      (let path = Test_util.fresh_path ".hep" in
       Raw_formats.Hep.generate ~path ~n_events:300 ~seed:5 ();
       path)
  in
  let cols = [ ("col0", Dtype.Int); ("col1", Dtype.Float) ] in
  let num_query =
    "SELECT COUNT(*), SUM(col1), AVG(col1) FROM t WHERE col0 < 500000000"
  in
  let cases =
    [
      ( "csv",
        (fun db ->
          Raw_db.register_csv db ~name:"t" ~path:(Lazy.force csv_path)
            ~columns:cols ()),
        num_query );
      ( "fwb",
        (fun db ->
          Raw_db.register_fwb db ~name:"t" ~path:(Lazy.force fwb_path)
            ~columns:cols),
        num_query );
      ( "jsonl",
        (fun db ->
          Raw_db.register_jsonl db ~name:"t" ~path:(Lazy.force jsonl_path)
            ~columns:[ ("a", Dtype.Int); ("x", Dtype.Float) ]),
        "SELECT COUNT(*), SUM(x), AVG(x) FROM t WHERE a < 500000000" );
      ( "hep",
        (fun db ->
          Raw_db.register_hep db ~name_prefix:"h" ~path:(Lazy.force hep_path)),
        "SELECT COUNT(*), AVG(run_number) FROM h_events WHERE run_number < 3"
      );
    ]
  in
  let policies =
    [
      ("fail", Scan_errors.Fail_fast);
      ("skip", Scan_errors.Skip_row);
      ("null", Scan_errors.Null_fill);
    ]
  in
  List.concat_map
    (fun (fmt, register, query) ->
      List.concat_map
        (fun (pname, policy) ->
          List.map
            (fun par ->
              Alcotest.test_case
                (Printf.sprintf "%s / --on-error %s / par %d" fmt pname par)
                `Slow
                (fun () -> differential_case ~policy ~par register query))
            [ 1; 3 ])
        policies)
    cases

let invariance_suite =
  [
    Alcotest.test_case "estimate is parallelism-invariant" `Quick (fun () ->
        let run par =
          Raw_db.query
            (coverage_db (approx_config ~eps:0.05 ~seed:3 ~par ()))
            coverage_query
        in
        let r1 = run 1 and r4 = run 4 in
        Test_util.check_chunk "identical chunks" r1.Executor.chunk
          r4.Executor.chunk;
        let i1 = info_of r1 and i4 = info_of r4 in
        Alcotest.(check int) "same morsels sampled" i1.Approx.morsels_sampled
          i4.Approx.morsels_sampled;
        List.iter2
          (fun (a : Approx.band) (b : Approx.band) ->
            Alcotest.(check (float 0.)) "same estimate" a.Approx.estimate
              b.Approx.estimate;
            Alcotest.(check (float 0.)) "same bound" a.Approx.half_width
              b.Approx.half_width)
          i1.Approx.bands i4.Approx.bands);
    Alcotest.test_case "seed changes the sample, same seed repeats it" `Quick
      (fun () ->
        let run seed =
          info_of
            (Raw_db.query
               (coverage_db (approx_config ~eps:0.05 ~seed ()))
               coverage_query)
        in
        let a = run 1 and a' = run 1 and b = run 2 in
        Alcotest.(check bool) "same seed, same estimates" true
          (List.map (fun (x : Approx.band) -> x.Approx.estimate) a.Approx.bands
          = List.map (fun (x : Approx.band) -> x.Approx.estimate) a'.Approx.bands);
        Alcotest.(check bool) "different seed, different sample" true
          (List.map (fun (x : Approx.band) -> x.Approx.estimate) a.Approx.bands
          <> List.map (fun (x : Approx.band) -> x.Approx.estimate) b.Approx.bands));
  ]

(* ------------------------------------------------------------------ *)
(* Config validation                                                   *)
(* ------------------------------------------------------------------ *)

let config_suite =
  [
    Alcotest.test_case "eps outside (0,1) and NaN are typed config errors"
      `Quick (fun () ->
        List.iter
          (fun eps ->
            match
              Raw_db.create ~config:(approx_config ~eps ()) ()
            with
            | _ -> Alcotest.failf "eps %g accepted" eps
            | exception Resource_error.Invalid_config msg ->
              Alcotest.(check bool)
                (Printf.sprintf "message names approx for %g" eps)
                true
                (String.length msg >= 6 && String.sub msg 0 6 = "approx"))
          [ 0.; -0.5; 1.; 1.5; Float.nan ]);
    Alcotest.test_case "valid eps and approx=None pass validation" `Quick
      (fun () ->
        ignore (Raw_db.create ~config:(approx_config ~eps:0.5 ()) ());
        ignore (Raw_db.create ~config:Config.default ()));
  ]

(* ------------------------------------------------------------------ *)
(* Exit semantics: early stop is success, cancellation still trips     *)
(* ------------------------------------------------------------------ *)

let semantics_suite =
  [
    Alcotest.test_case
      "early stop is a non-degraded success, distinct from deadline" `Quick
      (fun () ->
        let report =
          Raw_db.query (coverage_db (approx_config ~eps:0.2 ~seed:1 ())) coverage_query
        in
        let info = info_of report in
        Alcotest.(check bool) "stopped before the end" false info.Approx.exact;
        Alcotest.(check bool) "sampled a strict subset" true
          (Approx.fraction info < 1.);
        Alcotest.(check (list string)) "nothing degraded" []
          report.Executor.degraded;
        (* the same query under a tripped governance token still raises
           the typed cancellation (CLI exit 4), unchanged by approx *)
        let cancel = Cancel.create ~trip_after_checks:2 () in
        match
          Raw_db.query ~cancel
            (coverage_db (approx_config ~eps:0.2 ~seed:1 ()))
            coverage_query
        with
        | _ -> Alcotest.fail "tripped token did not cancel the sampled scan"
        | exception Resource_error.Cancelled _ -> ());
    Alcotest.test_case "ineligible queries run exactly, without an account"
      `Quick (fun () ->
        let db = coverage_db (approx_config ~eps:0.05 ()) in
        let report = Raw_db.query db "SELECT MAX(col1) FROM t" in
        Alcotest.(check bool) "no approx account" true
          (report.Executor.approx = None);
        let expected =
          Raw_db.sql (coverage_db (exact_config ())) "SELECT MAX(col1) FROM t"
        in
        Test_util.check_chunk "exact result" expected report.Executor.chunk;
        (* grouping is also ineligible *)
        let r2 =
          Raw_db.query db
            "SELECT col0, COUNT(*) FROM t GROUP BY col0 ORDER BY col0 LIMIT 3"
        in
        Alcotest.(check bool) "grouped query has no account" true
          (r2.Executor.approx = None));
    Alcotest.test_case "unfiltered COUNT(*) stops at the morsel floor with \
                        the exact answer" `Quick (fun () ->
        let report =
          Raw_db.query
            (coverage_db (approx_config ~eps:0.05 ~seed:9 ()))
            "SELECT COUNT(*) FROM t"
        in
        let info = info_of report in
        Alcotest.(check bool) "early stop" false info.Approx.exact;
        Alcotest.(check int) "stopped at the floor" 16
          info.Approx.morsels_sampled;
        Alcotest.check Test_util.value_testable "cardinality is exact"
          (Value.Int 8192)
          (Test_util.scalar_of report));
    Alcotest.test_case "approx queries bump their own metric family" `Quick
      (fun () ->
        let before = Io_stats.get "approx.queries" in
        let stops = Io_stats.get "approx.early_stops" in
        ignore
          (Raw_db.query
             (coverage_db (approx_config ~eps:0.2 ~seed:1 ()))
             coverage_query);
        Alcotest.(check int) "approx.queries +1" (before + 1)
          (Io_stats.get "approx.queries");
        Alcotest.(check int) "approx.early_stops +1" (stops + 1)
          (Io_stats.get "approx.early_stops"));
  ]

let suites =
  [
    ("approx.sampling", sampling_suite);
    ("approx.estimator", estimator_suite);
    ("approx.coverage", coverage_suite);
    ("approx.differential", differential_suite);
    ("approx.invariance", invariance_suite);
    ("approx.config", config_suite);
    ("approx.semantics", semantics_suite);
  ]
