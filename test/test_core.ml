open Raw_vector
open Raw_core
open Test_util

(* ---------------- Catalog ---------------- *)

let catalog_tests =
  [
    Alcotest.test_case "register and lookup" `Quick (fun () ->
        let cat = Catalog.create () in
        let path = write_csv_rows (grid_rows 3 2) in
        Catalog.register cat ~name:"t" ~path ~format:(Format_kind.Csv { sep = ',' })
          ~schema:(Schema.of_pairs (int_cols 2));
        Alcotest.(check bool) "mem" true (Catalog.mem cat "t");
        Alcotest.(check (list string)) "tables" [ "t" ] (Catalog.tables cat);
        let e = Catalog.get cat "t" in
        Alcotest.(check int) "n_rows" 3 (Catalog.n_rows cat e));
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        let cat = Catalog.create () in
        let path = write_csv_rows [ [ 1 ] ] in
        let reg () =
          Catalog.register cat ~name:"t" ~path
            ~format:(Format_kind.Csv { sep = ',' })
            ~schema:(Schema.of_pairs (int_cols 1))
        in
        reg ();
        Alcotest.check_raises "dup" (Invalid_argument "Catalog.register: duplicate table t")
          reg);
    Alcotest.test_case "fwb with string column rejected" `Quick (fun () ->
        let cat = Catalog.create () in
        Alcotest.check_raises "string"
          (Invalid_argument "Catalog.register: FWB tables cannot have String columns")
          (fun () ->
            Catalog.register cat ~name:"b" ~path:"/nonexistent"
              ~format:Format_kind.Fwb
              ~schema:(Schema.of_pairs [ ("s", Dtype.String) ])));
    Alcotest.test_case "fwb n_rows from layout" `Quick (fun () ->
        let cat = Catalog.create () in
        let path = fresh_path ".fwb" in
        Raw_formats.Fwb.generate ~path ~n_rows:17 ~dtypes:[| Dtype.Int; Dtype.Float |]
          ~seed:1 ();
        Catalog.register cat ~name:"b" ~path ~format:Format_kind.Fwb
          ~schema:(Schema.of_pairs [ ("a", Dtype.Int); ("x", Dtype.Float) ]);
        Alcotest.(check int) "rows" 17 (Catalog.n_rows cat (Catalog.get cat "b")));
    Alcotest.test_case "register_hep creates four tables" `Quick (fun () ->
        let cat = Catalog.create () in
        let path = fresh_path ".hep" in
        Raw_formats.Hep.generate ~path ~n_events:20 ~seed:2 ();
        Catalog.register_hep cat ~name_prefix:"atlas" ~path;
        Alcotest.(check (list string)) "tables"
          [ "atlas_electrons"; "atlas_events"; "atlas_jets"; "atlas_muons" ]
          (Catalog.tables cat);
        let ev = Catalog.get cat "atlas_events" in
        Alcotest.(check int) "events" 20 (Catalog.n_rows cat ev);
        Alcotest.(check int) "event schema arity" 2 (Schema.arity ev.schema);
        let mu = Catalog.get cat "atlas_muons" in
        let n_mu = Catalog.n_rows cat mu in
        let entry_of, item_of = Catalog.hep_index cat mu in
        Alcotest.(check int) "index length" n_mu (Array.length entry_of);
        Alcotest.(check int) "items too" n_mu (Array.length item_of);
        (* dense ids are (entry, item) in lexicographic order *)
        let ok = ref true in
        for i = 1 to n_mu - 1 do
          if
            not
              (entry_of.(i) > entry_of.(i - 1)
              || (entry_of.(i) = entry_of.(i - 1) && item_of.(i) = item_of.(i - 1) + 1))
          then ok := false
        done;
        Alcotest.(check bool) "index ordered" true !ok);
    Alcotest.test_case "hep tables reject user schema" `Quick (fun () ->
        let cat = Catalog.create () in
        Alcotest.check_raises "schema"
          (Invalid_argument "Catalog.register: HEP schemas are fixed; use register_hep")
          (fun () ->
            Catalog.register cat ~name:"h" ~path:"/x" ~format:Format_kind.Hep_events
              ~schema:(Schema.of_pairs [ ("a", Dtype.Int) ])));
    Alcotest.test_case "forget_adaptive_state clears caches" `Quick (fun () ->
        let db = grid_csv_db () in
        ignore (Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 1000");
        let cat = Raw_db.catalog db in
        Alcotest.(check bool) "posmap built" true
          ((Catalog.get cat "t").posmap <> None);
        Alcotest.(check bool) "pool populated" true (Shred_pool.size (Catalog.shreds cat) > 0);
        Catalog.forget_adaptive_state cat;
        Alcotest.(check bool) "posmap gone" true ((Catalog.get cat "t").posmap = None);
        Alcotest.(check int) "pool empty" 0 (Shred_pool.size (Catalog.shreds cat));
        Alcotest.(check int) "templates empty" 0
          (Template_cache.size (Catalog.templates cat)));
  ]

(* ---------------- Template cache ---------------- *)

let template_tests =
  [
    Alcotest.test_case "first get compiles, second hits" `Quick (fun () ->
        let tc = Template_cache.create ~compile_seconds:2.0 in
        let calls = ref 0 in
        let v1 = Template_cache.get tc ~kind:"test.int" ~key:"k" (fun () -> incr calls; 42) in
        let v2 = Template_cache.get tc ~kind:"test.int" ~key:"k" (fun () -> incr calls; 43) in
        Alcotest.(check int) "compiled once" 1 !calls;
        Alcotest.(check int) "same artifact" 42 v1;
        Alcotest.(check int) "cached" 42 v2;
        Alcotest.(check int) "hits" 1 (Template_cache.hits tc);
        Alcotest.(check int) "misses" 1 (Template_cache.misses tc));
    Alcotest.test_case "charges simulated seconds per miss" `Quick (fun () ->
        let tc = Template_cache.create ~compile_seconds:0.5 in
        ignore (Template_cache.get tc ~kind:"test.unit" ~key:"a" (fun () -> ()));
        ignore (Template_cache.get tc ~kind:"test.unit" ~key:"b" (fun () -> ()));
        ignore (Template_cache.get tc ~kind:"test.unit" ~key:"a" (fun () -> ()));
        Alcotest.(check (float 1e-9)) "total" 1.0 (Template_cache.charged_seconds tc);
        Alcotest.(check (float 1e-9)) "pending" 1.0 (Template_cache.take_charged_seconds tc);
        Alcotest.(check (float 1e-9)) "drained" 0.0 (Template_cache.take_charged_seconds tc));
    Alcotest.test_case "clear resets" `Quick (fun () ->
        let tc = Template_cache.create ~compile_seconds:1.0 in
        ignore (Template_cache.get tc ~kind:"test.unit" ~key:"a" (fun () -> ()));
        Template_cache.clear tc;
        Alcotest.(check int) "size" 0 (Template_cache.size tc);
        ignore (Template_cache.get tc ~kind:"test.unit" ~key:"a" (fun () -> ()));
        Alcotest.(check int) "recompiles (counters were reset)" 1
          (Template_cache.misses tc));
    Alcotest.test_case "same key, different kinds coexist" `Quick (fun () ->
        (* the slot is (kind, key): two kernels of different artifact types
           must never alias each other's cached Obj.t *)
        let tc = Template_cache.create ~compile_seconds:1.0 in
        let vi = Template_cache.get tc ~kind:"test.int" ~key:"k" (fun () -> 7) in
        let vs = Template_cache.get tc ~kind:"test.str" ~key:"k" (fun () -> "seven") in
        Alcotest.(check int) "int artifact" 7 vi;
        Alcotest.(check string) "string artifact" "seven" vs;
        Alcotest.(check int) "two slots" 2 (Template_cache.size tc);
        Alcotest.(check int) "both compiled" 2 (Template_cache.misses tc);
        (* re-gets hit their own slot and return the right type *)
        let vi' = Template_cache.get tc ~kind:"test.int" ~key:"k" (fun () -> 0) in
        let vs' = Template_cache.get tc ~kind:"test.str" ~key:"k" (fun () -> "") in
        Alcotest.(check int) "int cached" 7 vi';
        Alcotest.(check string) "string cached" "seven" vs';
        Alcotest.(check int) "hits" 2 (Template_cache.hits tc));
  ]

(* ---------------- Shred pool ---------------- *)

let pool_tests =
  [
    Alcotest.test_case "ensure creates invalid column" `Quick (fun () ->
        let p = Shred_pool.create ~capacity:4 in
        let key = { Shred_pool.table = "t"; column = 1 } in
        let c = Shred_pool.ensure p key ~n_rows:5 ~dtype:Dtype.Int in
        Alcotest.(check int) "length" 5 (Column.length c);
        Alcotest.(check int) "nothing loaded" 0 (Column.valid_count c);
        Alcotest.(check bool) "same instance back" true
          (Shred_pool.ensure p key ~n_rows:5 ~dtype:Dtype.Int == c));
    Alcotest.test_case "subsumes and missing" `Quick (fun () ->
        let p = Shred_pool.create ~capacity:4 in
        let key = { Shred_pool.table = "t"; column = 0 } in
        let c = Shred_pool.ensure p key ~n_rows:6 ~dtype:Dtype.Float in
        Column.scatter c [| 1; 3 |] (Column.of_float_array [| 1.0; 3.0 |]);
        Alcotest.(check bool) "subsumed" true (Shred_pool.subsumes c [| 1; 3 |]);
        Alcotest.(check bool) "not subsumed" false (Shred_pool.subsumes c [| 1; 2 |]);
        Alcotest.(check (array int)) "missing" [| 2; 5 |]
          (Shred_pool.missing c [| 1; 2; 3; 5 |]));
    Alcotest.test_case "progressive fill converges" `Quick (fun () ->
        let p = Shred_pool.create ~capacity:4 in
        let key = { Shred_pool.table = "t"; column = 0 } in
        let c = Shred_pool.ensure p key ~n_rows:4 ~dtype:Dtype.Int in
        Column.scatter c [| 0; 1 |] (Column.of_int_array [| 10; 11 |]);
        Column.scatter c [| 2; 3 |] (Column.of_int_array [| 12; 13 |]);
        Alcotest.(check bool) "fully loaded" true (Column.all_valid c || Column.valid_count c = 4);
        check_value "kept earlier fill" (Int 10) (Column.get c 0));
    Alcotest.test_case "LRU eviction at capacity" `Quick (fun () ->
        let p = Shred_pool.create ~capacity:2 in
        let k i = { Shred_pool.table = "t"; column = i } in
        ignore (Shred_pool.ensure p (k 0) ~n_rows:1 ~dtype:Dtype.Int);
        ignore (Shred_pool.ensure p (k 1) ~n_rows:1 ~dtype:Dtype.Int);
        ignore (Shred_pool.find p (k 0));
        ignore (Shred_pool.ensure p (k 2) ~n_rows:1 ~dtype:Dtype.Int);
        Alcotest.(check int) "size bounded" 2 (Shred_pool.size p);
        Alcotest.(check bool) "LRU victim gone" true (Shred_pool.find p (k 1) = None);
        Alcotest.(check bool) "recent kept" true (Shred_pool.find p (k 0) <> None));
    Alcotest.test_case "hit/miss accounting" `Quick (fun () ->
        let p = Shred_pool.create ~capacity:2 in
        Shred_pool.record_hit p;
        Shred_pool.record_miss p;
        Shred_pool.record_miss p;
        Alcotest.(check int) "hits" 1 (Shred_pool.hits p);
        Alcotest.(check int) "misses" 2 (Shred_pool.misses p);
        Shred_pool.clear p;
        Alcotest.(check int) "cleared" 0 (Shred_pool.hits p));
    Alcotest.test_case "put replaces" `Quick (fun () ->
        let p = Shred_pool.create ~capacity:2 in
        let key = { Shred_pool.table = "t"; column = 0 } in
        Shred_pool.put p key (Column.of_int_array [| 1; 2 |]);
        (match Shred_pool.find p key with
         | Some c -> Alcotest.(check bool) "full column" true (Column.all_valid c)
         | None -> Alcotest.fail "missing");
        Shred_pool.remove p key;
        Alcotest.(check bool) "removed" true (Shred_pool.find p key = None));
  ]

(* ---------------- Logical ---------------- *)

let logical_tests =
  [
    Alcotest.test_case "scan schema projects and renumbers" `Quick (fun () ->
        let db = grid_csv_db ~m:4 () in
        let s =
          Logical.output_schema (Raw_db.catalog db)
            (Logical.Scan { table = "t"; columns = [ 2; 0 ] })
        in
        Alcotest.(check string) "first" "col2" (Schema.name s 0);
        Alcotest.(check string) "second" "col0" (Schema.name s 1));
    Alcotest.test_case "join schema uniquifies collisions" `Quick (fun () ->
        let db = grid_csv_db () in
        let scan = Logical.Scan { table = "t"; columns = [ 0; 1 ] } in
        let s =
          Logical.output_schema (Raw_db.catalog db)
            (Logical.Join { left = scan; right = scan; left_key = 0; right_key = 0 })
        in
        Alcotest.(check string) "left name" "col0" (Schema.name s 0);
        Alcotest.(check string) "right renamed" "col0#2" (Schema.name s 2));
    Alcotest.test_case "aggregate schema types" `Quick (fun () ->
        let db = grid_csv_db () in
        let plan =
          Logical.Aggregate
            {
              keys = [ 0 ];
              aggs =
                [
                  { Logical.op = Raw_vector.Kernels.Avg; expr = Raw_engine.Expr.col 1; name = "a" };
                  { Logical.op = Raw_vector.Kernels.Count; expr = Raw_engine.Expr.col 1; name = "c" };
                  { Logical.op = Raw_vector.Kernels.Max; expr = Raw_engine.Expr.col 1; name = "m" };
                ];
              input = Logical.Scan { table = "t"; columns = [ 0; 1 ] };
            }
        in
        let s = Logical.output_schema (Raw_db.catalog db) plan in
        Alcotest.(check bool) "avg is float" true (Dtype.equal (Schema.dtype s 1) Dtype.Float);
        Alcotest.(check bool) "count is int" true (Dtype.equal (Schema.dtype s 2) Dtype.Int);
        Alcotest.(check bool) "max keeps int" true (Dtype.equal (Schema.dtype s 3) Dtype.Int));
    Alcotest.test_case "tables collects scans" `Quick (fun () ->
        let scan t = Logical.Scan { table = t; columns = [ 0 ] } in
        let plan =
          Logical.Join
            { left = Logical.Filter (Raw_engine.Expr.bool true, scan "a");
              right = scan "b"; left_key = 0; right_key = 0 }
        in
        Alcotest.(check (list string)) "both" [ "a"; "b" ] (Logical.tables plan));
  ]

let suites =
  [
    ("core.catalog", catalog_tests);
    ("core.template_cache", template_tests);
    ("core.shred_pool", pool_tests);
    ("core.logical", logical_tests);
  ]
