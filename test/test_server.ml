(* The serving tier (PR 6): shared scans, the statement/result cache and
   its staleness rule, budget-driven result eviction, and the Unix-socket
   server end to end. *)

open Raw_vector
open Raw_core
module Jsons = Raw_obs.Jsons
module Io_stats = Raw_storage.Io_stats

(* 1000 rows with enough structure for filters, grouping and arithmetic:
   col0 = i, col1 = i mod 7, col2 = (i * 37) mod 100, col3 = i / 10. *)
let mk_rows n =
  List.init n (fun i -> [ i; i mod 7; i * 37 mod 100; i / 10 ])

let db_over path =
  let db = Raw_db.create () in
  Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
  db

(* Query shapes covering every operator a shared-scan member replays:
   filter, project, aggregate, group-by, order-by, limit, expressions. *)
let member_queries =
  [
    "SELECT col0, col2 FROM t WHERE col0 < 250";
    "SELECT COUNT(*) FROM t";
    "SELECT SUM(col0), MIN(col2) FROM t WHERE col1 = 3";
    "SELECT col1, COUNT(*) FROM t GROUP BY col1 ORDER BY col1 ASC";
    "SELECT col0 FROM t ORDER BY col0 DESC LIMIT 5";
    "SELECT col0 + col2 FROM t WHERE NOT (col1 = 0) LIMIT 10";
  ]

let shared_scan_suite =
  [
    Alcotest.test_case "shareable_table accepts single-table, rejects joins"
      `Quick (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 50) in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
        Raw_db.register_csv db ~name:"u" ~path ~columns:(Test_util.int_cols 4) ();
        let bind q = Raw_db.bind_cached db q in
        Alcotest.(check (option string))
          "plain scan" (Some "t")
          (Shared_scan.shareable_table (bind "SELECT col0 FROM t WHERE col1 = 2"));
        Alcotest.(check (option string))
          "aggregate" (Some "t")
          (Shared_scan.shareable_table (bind "SELECT COUNT(*) FROM t"));
        Alcotest.(check (option string))
          "join refused" None
          (Shared_scan.shareable_table
             (bind "SELECT t.col0 FROM t JOIN u ON t.col0 = u.col0")));
    Alcotest.test_case "shared group results are bit-identical to one-shot"
      `Slow (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 1000) in
        (* expected answers from private sessions, one per query, so no
           adaptive state crosses between members *)
        let expected =
          List.map (fun q -> Raw_db.sql (db_over path) q) member_queries
        in
        let db = db_over path in
        let plans = List.map (Raw_db.bind_cached db) member_queries in
        let group =
          Shared_scan.run_group (Raw_db.catalog db) (Raw_db.options db) plans
        in
        Alcotest.(check int) "all members answered"
          (List.length member_queries)
          (List.length group.Shared_scan.results);
        Alcotest.(check bool) "one traversal's rows" true
          (group.Shared_scan.rows_scanned = 1000);
        List.iteri
          (fun i (want, (got : Shared_scan.member_result)) ->
            Test_util.check_chunk
              (Printf.sprintf "member %d: %s" i (List.nth member_queries i))
              want got.Shared_scan.chunk)
          (List.combine expected group.Shared_scan.results);
        (* and again through the same session: adaptive state warmed by the
           shared pass must not change answers *)
        let group2 =
          Shared_scan.run_group (Raw_db.catalog db) (Raw_db.options db) plans
        in
        List.iteri
          (fun i (want, (got : Shared_scan.member_result)) ->
            Test_util.check_chunk
              (Printf.sprintf "warm member %d" i)
              want got.Shared_scan.chunk)
          (List.combine expected group2.Shared_scan.results));
    Alcotest.test_case "mixed-table group is refused" `Quick (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 50) in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
        Raw_db.register_csv db ~name:"u" ~path ~columns:(Test_util.int_cols 4) ();
        let plans =
          [
            Raw_db.bind_cached db "SELECT col0 FROM t";
            Raw_db.bind_cached db "SELECT col0 FROM u";
          ]
        in
        match
          Shared_scan.run_group (Raw_db.catalog db) (Raw_db.options db) plans
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Statement + result cache                                            *)
(* ------------------------------------------------------------------ *)

let overwrite_with_bump path rows =
  (* same-second overwrites are real on fast filesystems; force the mtime
     forward so the identity check cannot depend on timestamp luck *)
  let st = Unix.stat path in
  let oc = open_out path in
  List.iter
    (fun r ->
      output_string oc (String.concat "," (List.map string_of_int r) ^ "\n"))
    rows;
  close_out oc;
  Unix.utimes path (st.Unix.st_mtime +. 2.0) (st.Unix.st_mtime +. 2.0)

let cache_suite =
  [
    Alcotest.test_case "statement cache returns the identical bound plan"
      `Quick (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 100) in
        let db = db_over path in
        let q = "SELECT col0 FROM t WHERE col1 = 2" in
        let p1 = Raw_db.bind_cached db q in
        let p2 = Raw_db.bind_cached db q in
        Alcotest.(check bool) "physically shared" true (p1 == p2));
    Alcotest.test_case "exact_key separates constants, fingerprint does not"
      `Quick (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 100) in
        let db = db_over path in
        let a = Raw_db.bind_cached db "SELECT col0 FROM t WHERE col1 < 3" in
        let b = Raw_db.bind_cached db "SELECT col0 FROM t WHERE col1 < 5" in
        Alcotest.(check string)
          "same shape" (Logical.fingerprint a) (Logical.fingerprint b);
        Alcotest.(check bool)
          "different exact keys" false
          (Logical.exact_key a = Logical.exact_key b));
    Alcotest.test_case "overwriting the file invalidates cached results"
      `Slow (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 100) in
        let db = db_over path in
        let cache = Raw_db.stmt_cache db in
        let q = "SELECT SUM(col0) FROM t" in
        let plan = Raw_db.bind_cached db q in
        let r1 = Raw_db.sql db q in
        let key1 =
          match Stmt_cache.result_key (Raw_db.catalog db) plan with
          | Some k -> k
          | None -> Alcotest.fail "expected a cacheable key"
        in
        Stmt_cache.put_result cache (Raw_db.catalog db) ~key:key1
          ~tables:(Logical.tables plan) r1 (Raw_db.describe db "t");
        Alcotest.(check bool) "hit while fresh" true
          (Stmt_cache.find_result cache key1 <> None);
        (* no change on disk -> refresh is a no-op *)
        Alcotest.(check (list string)) "no false invalidation" []
          (Raw_db.refresh_tables db [ "t" ]);
        (* overwrite with different bytes *)
        overwrite_with_bump path (mk_rows 50);
        Alcotest.(check (list string))
          "t invalidated" [ "t" ]
          (Raw_db.refresh_tables db [ "t" ]);
        Alcotest.(check bool) "entry dropped" true
          (Stmt_cache.find_result cache key1 = None);
        let key2 =
          match
            Stmt_cache.result_key (Raw_db.catalog db)
              (Raw_db.bind_cached db q)
          with
          | Some k -> k
          | None -> Alcotest.fail "expected a cacheable key"
        in
        Alcotest.(check bool) "key tracks the file version" false (key1 = key2);
        (* the session must now answer from the new bytes, equal to a cold
           session over the same file *)
        Test_util.check_chunk "recomputed from new bytes"
          (Raw_db.sql (db_over path) q)
          (Raw_db.sql db q));
    Alcotest.test_case "budget evicts LRU results first" `Quick (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 1000) in
        let config =
          { Config.default with Config.memory_budget = Some 200_000 }
        in
        let db = Raw_db.create ~config () in
        Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
        let cache = Raw_db.stmt_cache db in
        let cat = Raw_db.catalog db in
        let big = Raw_db.sql db "SELECT col0, col1, col2, col3 FROM t" in
        let schema = Raw_db.describe db "t" in
        Io_stats.reset "gov.evictions.results";
        (* each entry is ~4 cols x 1000 rows; a 200 KB budget (shared with
           the file pages already charged) cannot hold many *)
        for i = 0 to 9 do
          Stmt_cache.put_result cache cat
            ~key:(Printf.sprintf "synthetic-key-%d" i)
            ~tables:[ "t" ] big schema
        done;
        Alcotest.(check bool) "evictions happened" true
          (Io_stats.get "gov.evictions.results" > 0
          || Stmt_cache.n_results cache < 10);
        Alcotest.(check bool) "usage stays within reason" true
          (Stmt_cache.byte_usage cache <= 200_000));
  ]

(* ------------------------------------------------------------------ *)
(* The server, end to end over a Unix socket                           *)
(* ------------------------------------------------------------------ *)

let connect_when_ready socket_path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Server.Client.connect socket_path with
    | c -> c
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not come up within 10s";
      Thread.delay 0.01;
      go ()
  in
  go ()

let int_rows j =
  match Jsons.member "rows" j with
  | Some (Jsons.List rows) ->
    List.map
      (function
        | Jsons.List cells ->
          List.map
            (function
              | Jsons.Int n -> n
              | c -> Alcotest.failf "non-int cell %s" (Jsons.to_string c))
            cells
        | r -> Alcotest.failf "non-list row %s" (Jsons.to_string r))
      rows
  | _ -> Alcotest.failf "no rows in %s" (Jsons.to_string j)

let server_suite =
  [
    Alcotest.test_case "concurrent sessions get correct, cached answers"
      `Slow (fun () ->
        let path_a = Test_util.write_csv_rows (mk_rows 1000) in
        let path_b = Test_util.write_csv_rows (mk_rows 400) in
        let socket_path = Test_util.fresh_path ".sock" in
        (* oracle counts from a private session before the server exists *)
        let oracle = Raw_db.create () in
        Raw_db.register_csv oracle ~name:"a" ~path:path_a
          ~columns:(Test_util.int_cols 4) ();
        Raw_db.register_csv oracle ~name:"b" ~path:path_b
          ~columns:(Test_util.int_cols 4) ();
        let expect table k =
          match
            Raw_db.scalar oracle
              (Printf.sprintf "SELECT COUNT(*) FROM %s WHERE col0 < %d" table k)
          with
          | Value.Int n -> n
          | v -> Alcotest.failf "non-int count %s" (Value.to_string v)
        in
        let db = Raw_db.create () in
        Raw_db.register_csv db ~name:"a" ~path:path_a
          ~columns:(Test_util.int_cols 4) ();
        Raw_db.register_csv db ~name:"b" ~path:path_b
          ~columns:(Test_util.int_cols 4) ();
        let server =
          Thread.create
            (fun () -> Server.serve ~batch_window:0.002 ~socket_path db)
            ()
        in
        let failures = ref [] in
        let fail_mutex = Mutex.create () in
        let sessions = 8 and per_session = 4 in
        let run_round () =
          let threads =
            List.init sessions (fun si ->
                Thread.create
                  (fun () ->
                    let table = if si mod 2 = 0 then "a" else "b" in
                    let c = connect_when_ready socket_path in
                    Fun.protect
                      ~finally:(fun () -> Server.Client.close c)
                      (fun () ->
                        for q = 0 to per_session - 1 do
                          let k = ((si * per_session) + q + 1) * 13 in
                          let sql =
                            Printf.sprintf
                              "SELECT COUNT(*) FROM %s WHERE col0 < %d" table k
                          in
                          match Server.Client.query c sql with
                          | Error e ->
                            Mutex.protect fail_mutex (fun () ->
                                failures := (sql ^ ": " ^ Server.Client.err_to_string e) :: !failures)
                          | Ok j -> (
                            match (Jsons.member "ok" j, int_rows j) with
                            | Some (Jsons.Bool true), [ [ got ] ]
                              when got = expect table k -> ()
                            | _ ->
                              Mutex.protect fail_mutex (fun () ->
                                  failures :=
                                    (sql ^ " -> " ^ Jsons.to_string j)
                                    :: !failures))
                        done))
                  ())
          in
          List.iter Thread.join threads
        in
        run_round ();
        (* second round repeats every statement: the result cache serves it *)
        run_round ();
        (match !failures with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "%d bad response(s), e.g. %s" (List.length !failures) f);
        let c = connect_when_ready socket_path in
        (match Server.Client.ping c with
        | Ok j ->
          Alcotest.(check bool) "pong" true
            (Jsons.member "ok" j = Some (Jsons.Bool true))
        | Error e -> Alcotest.failf "ping: %s" (Server.Client.err_to_string e));
        (match Server.Client.stats c with
        | Ok j -> (
          match Jsons.member "counters" j with
          | Some (Jsons.Obj kvs) ->
            let get k =
              match List.assoc_opt k kvs with
              | Some (Jsons.Int n) -> n
              | Some (Jsons.Float f) -> int_of_float f
              | _ -> 0
            in
            Alcotest.(check bool) "all requests counted" true
              (get "server.requests" >= 2 * sessions * per_session);
            Alcotest.(check bool) "warm round hit the result cache" true
              (get "cache.result.hits" >= sessions * per_session)
          | _ -> Alcotest.failf "no counters in %s" (Jsons.to_string j))
        | Error e -> Alcotest.failf "stats: %s" (Server.Client.err_to_string e));
        (* a bad statement answers code 1 without killing the session *)
        (match Server.Client.query c "SELECT nope FROM a" with
        | Ok j ->
          Alcotest.(check bool) "bind error reported" true
            (Jsons.member "code" j = Some (Jsons.Int 1))
        | Error e -> Alcotest.failf "error query: %s" (Server.Client.err_to_string e));
        (match Server.Client.shutdown c with
        | Ok j ->
          Alcotest.(check bool) "shutdown acked" true
            (Jsons.member "ok" j = Some (Jsons.Bool true))
        | Error e -> Alcotest.failf "shutdown: %s" (Server.Client.err_to_string e));
        Server.Client.close c;
        Thread.join server;
        Alcotest.(check bool) "socket file removed" false
          (Sys.file_exists socket_path));
    Alcotest.test_case "file overwrite between requests invalidates the \
                        served cache" `Slow (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 100) in
        let socket_path = Test_util.fresh_path ".sock" in
        let db = db_over path in
        let server =
          Thread.create
            (fun () -> Server.serve ~batch_window:0.0 ~socket_path db)
            ()
        in
        let c = connect_when_ready socket_path in
        let count () =
          match Server.Client.query c "SELECT COUNT(*) FROM t" with
          | Ok j -> (
            match int_rows j with
            | [ [ n ] ] -> n
            | _ -> Alcotest.failf "bad shape %s" (Jsons.to_string j))
          | Error e -> Alcotest.failf "query: %s" (Server.Client.err_to_string e)
        in
        Alcotest.(check int) "cold count" 100 (count ());
        Alcotest.(check int) "cached count" 100 (count ());
        overwrite_with_bump path (mk_rows 42);
        Alcotest.(check int) "post-overwrite count tracks the file" 42
          (count ());
        (match Server.Client.shutdown c with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "shutdown: %s" (Server.Client.err_to_string e));
        Server.Client.close c;
        Thread.join server);
  ]

(* ------------------------------------------------------------------ *)
(* Online aggregation over the server path (PR 7)                      *)
(* ------------------------------------------------------------------ *)

let approx_suite =
  [
    Alcotest.test_case
      "approx responses carry bands, skip the result cache and never fold \
       into shared scans" `Slow (fun () ->
        let path = Test_util.write_csv_rows (mk_rows 8192) in
        let socket_path = Test_util.fresh_path ".sock" in
        let config =
          {
            Config.default with
            Config.approx = Some 0.1;
            approx_seed = 7;
            chunk_rows = 64;
          }
        in
        let db = Raw_db.create ~config () in
        Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
        let server =
          (* a generous batch window so concurrent queries WOULD fold if
             approx didn't force them apart *)
          Thread.create
            (fun () -> Server.serve ~batch_window:0.05 ~socket_path db)
            ()
        in
        let sql = "SELECT COUNT(*), SUM(col2), AVG(col2) FROM t WHERE col0 < 4000" in
        let query c =
          match Server.Client.query c sql with
          | Ok j -> j
          | Error e -> Alcotest.failf "query: %s" (Server.Client.err_to_string e)
        in
        let flag name j =
          match Jsons.member name j with Some (Jsons.Bool b) -> b | _ -> false
        in
        let approx_of j =
          match Jsons.member "approx" j with
          | Some (Jsons.Obj _ as a) -> a
          | _ -> Alcotest.failf "no approx object in %s" (Jsons.to_string j)
        in
        let c = connect_when_ready socket_path in
        Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () ->
            let j1 = query c in
            let a1 = approx_of j1 in
            Alcotest.(check bool) "not cached" false (flag "cached" j1);
            Alcotest.(check bool) "not shared" false (flag "shared" j1);
            (match Jsons.member "fraction" a1 with
             | Some (Jsons.Float f) ->
               Alcotest.(check bool) "sampled a strict subset" true
                 (f > 0. && f < 1.)
             | _ -> Alcotest.fail "no fraction field");
            (match Jsons.member "aggs" a1 with
             | Some (Jsons.List aggs) ->
               Alcotest.(check int) "three bands" 3 (List.length aggs);
               List.iter
                 (fun agg ->
                   match
                     ( Jsons.member "name" agg,
                       Jsons.member "estimate" agg,
                       Jsons.member "bound" agg,
                       Jsons.member "relative" agg )
                   with
                   | Some (Jsons.Str _), Some (Jsons.Float _),
                     Some (Jsons.Float b), Some (Jsons.Float rel) ->
                     Alcotest.(check bool) "bound non-negative" true (b >= 0.);
                     Alcotest.(check bool) "band met the eps target" true
                       (rel <= 0.1)
                   | _ -> Alcotest.failf "bad band %s" (Jsons.to_string agg))
                 aggs
             | _ -> Alcotest.fail "no aggs field");
            (* an identical repeat must re-sample, not serve the cache *)
            let j2 = query c in
            Alcotest.(check bool) "repeat not cache-served" false
              (flag "cached" j2);
            ignore (approx_of j2);
            (* concurrent same-table queries inside one batch window stay
               individual runs *)
            let results = Array.make 2 Jsons.Null in
            let threads =
              List.init 2 (fun i ->
                  Thread.create
                    (fun () ->
                      let c2 = connect_when_ready socket_path in
                      Fun.protect
                        ~finally:(fun () -> Server.Client.close c2)
                        (fun () -> results.(i) <- query c2))
                    ())
            in
            List.iter Thread.join threads;
            Array.iter
              (fun j ->
                Alcotest.(check bool) "concurrent query not shared" false
                  (flag "shared" j);
                Alcotest.(check bool) "concurrent query not cached" false
                  (flag "cached" j);
                ignore (approx_of j))
              results;
            match Server.Client.shutdown c with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "shutdown: %s" (Server.Client.err_to_string e));
        Thread.join server);
  ]

(* ------------------------------------------------------------------ *)
(* Continuous telemetry (PR 9): timing, trace trees, metrics, windows   *)
(* ------------------------------------------------------------------ *)

(* Rebuild the parent-edge set of a request trace from the Chrome JSON's
   args.span_id/args.parent_id — the same tree Trace.edge_set computes
   server-side, but recovered from the wire format. *)
let edges_of_trace trace_json =
  match Jsons.member "traceEvents" trace_json with
  | Some (Jsons.List events) ->
    let info ev =
      let name =
        match Jsons.member "name" ev with
        | Some (Jsons.Str s) -> s
        | _ -> Alcotest.failf "event without name: %s" (Jsons.to_string ev)
      in
      let args =
        match Jsons.member "args" ev with Some a -> a | None -> Jsons.Obj []
      in
      let id =
        match Jsons.member "span_id" args with
        | Some (Jsons.Int n) -> n
        | _ -> Alcotest.failf "event without span_id: %s" (Jsons.to_string ev)
      in
      let parent =
        match Jsons.member "parent_id" args with
        | Some (Jsons.Int n) -> Some n
        | _ -> None
      in
      (id, name, parent)
    in
    let infos = List.map info events in
    let name_of id =
      match List.find_opt (fun (i, _, _) -> i = id) infos with
      | Some (_, n, _) -> Some n
      | None -> None
    in
    List.sort_uniq compare
      (List.map
         (fun (_, n, p) -> (Option.bind p name_of, n))
         infos)
  | _ -> Alcotest.failf "no traceEvents in %s" (Jsons.to_string trace_json)

let executed_edge_set =
  [
    (None, "session");
    (Some "batch", "execute");
    (Some "session", "batch");
    (Some "session", "queue-wait");
    (Some "session", "read");
    (Some "session", "write");
  ]

let with_telemetry_server ~parallelism f =
  let path = Test_util.write_csv_rows (mk_rows 500) in
  let socket_path = Test_util.fresh_path ".sock" in
  let config =
    {
      Config.default with
      Config.parallelism;
      telemetry_tick = 0.05;
      trace_retain = 8;
    }
  in
  let db = Raw_db.create ~config () in
  Raw_db.register_csv db ~name:"t" ~path ~columns:(Test_util.int_cols 4) ();
  let server =
    Thread.create
      (fun () -> Server.serve ~batch_window:0.002 ~socket_path db)
      ()
  in
  let c = connect_when_ready socket_path in
  Fun.protect
    ~finally:(fun () ->
      (match Server.Client.shutdown c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "shutdown: %s" (Server.Client.err_to_string e));
      Server.Client.close c;
      Thread.join server)
    (fun () -> f c)

let query_ok c sql =
  match Server.Client.query c sql with
  | Ok j when Jsons.member "ok" j = Some (Jsons.Bool true) -> j
  | Ok j -> Alcotest.failf "query failed: %s" (Jsons.to_string j)
  | Error e -> Alcotest.failf "query: %s" (Server.Client.err_to_string e)

(* All retained traces for [sql], slowest first (the ring keeps every run
   of a repeated statement separately). *)
let trace_all_edges_for c sql =
  match Server.Client.trace c with
  | Error e -> Alcotest.failf "trace: %s" (Server.Client.err_to_string e)
  | Ok j -> (
    match Jsons.member "traces" j with
    | Some (Jsons.List traces) -> (
      match
        List.filter_map
          (fun e ->
            if Jsons.member "sql" e = Some (Jsons.Str sql) then
              match Jsons.member "trace" e with
              | Some tj -> Some (edges_of_trace tj)
              | None -> Alcotest.failf "no trace in %s" (Jsons.to_string e)
            else None)
          traces
      with
      | [] -> Alcotest.failf "sql not retained: %s" (Jsons.to_string j)
      | l -> l)
    | _ -> Alcotest.failf "no traces in %s" (Jsons.to_string j))

let trace_edges_for c sql =
  match trace_all_edges_for c sql with
  | [ e ] -> e
  | l -> Alcotest.failf "expected one retained trace, got %d" (List.length l)

let telemetry_suite =
  let edge = Alcotest.(list (pair (option string) string)) in
  [
    Alcotest.test_case "responses carry a consistent timing object" `Slow
      (fun () ->
        with_telemetry_server ~parallelism:1 (fun c ->
            let j = query_ok c "SELECT COUNT(*) FROM t WHERE col0 < 111" in
            match Jsons.member "timing" j with
            | Some tm ->
              let f name =
                match Jsons.member name tm with
                | Some (Jsons.Float x) -> x
                | Some (Jsons.Int n) -> float_of_int n
                | _ -> Alcotest.failf "timing lacks %s" (Jsons.to_string tm)
              in
              List.iter
                (fun n ->
                  Alcotest.(check bool) (n ^ " >= 0") true (f n >= 0.))
                [ "read_s"; "queue_s"; "execute_s"; "total_s" ];
              Alcotest.(check bool) "total covers queue + execute" true
                (f "total_s" >= f "queue_s" +. f "execute_s")
            | None -> Alcotest.failf "no timing in %s" (Jsons.to_string j)));
    Alcotest.test_case "request trace tree has the exact edge set" `Slow
      (fun () ->
        with_telemetry_server ~parallelism:1 (fun c ->
            let sql = "SELECT SUM(col2) FROM t WHERE col0 < 222" in
            ignore (query_ok c sql);
            Alcotest.check edge "session -> read/queue-wait/batch/write"
              executed_edge_set (trace_edges_for c sql);
            (* a repeat of the same statement is answered by the result
               cache: same tree, execute replaced by cached; both runs are
               retained, slowest first *)
            ignore (query_ok c sql);
            let cached_edge_set =
              List.map
                (function
                  | Some "batch", "execute" -> (Some "batch", "cached")
                  | e -> e)
                executed_edge_set
            in
            Alcotest.check
              Alcotest.(slist edge compare)
              "executed and cached variants both retained"
              [ executed_edge_set; cached_edge_set ]
              (trace_all_edges_for c sql)));
    Alcotest.test_case "trace tree parenting is parallelism-invariant" `Slow
      (fun () ->
        let edges_at p =
          with_telemetry_server ~parallelism:p (fun c ->
              let sql = "SELECT MAX(col1) FROM t WHERE col0 < 333" in
              ignore (query_ok c sql);
              trace_edges_for c sql)
        in
        let e1 = edges_at 1 and e2 = edges_at 2 in
        Alcotest.check edge "p=1 matches the spec" executed_edge_set e1;
        Alcotest.check edge "p=2 identical" e1 e2);
    Alcotest.test_case "metrics op returns Prometheus exposition" `Slow
      (fun () ->
        with_telemetry_server ~parallelism:1 (fun c ->
            ignore (query_ok c "SELECT COUNT(*) FROM t");
            match Server.Client.metrics c with
            | Error e ->
              Alcotest.failf "metrics: %s" (Server.Client.err_to_string e)
            | Ok j ->
              let expo =
                match Jsons.member "exposition" j with
                | Some (Jsons.Str s) -> s
                | _ -> Alcotest.failf "no exposition in %s" (Jsons.to_string j)
              in
              Alcotest.(check (option Alcotest.string))
                "content type"
                (Some "text/plain; version=0.0.4")
                (match Jsons.member "content_type" j with
                | Some (Jsons.Str s) -> Some s
                | _ -> None);
              let contains needle =
                let nh = String.length expo and nn = String.length needle in
                let rec go i =
                  i + nn <= nh
                  && (String.sub expo i nn = needle || go (i + 1))
                in
                nn = 0 || go 0
              in
              List.iter
                (fun needle ->
                  Alcotest.(check bool)
                    ("exposition contains " ^ needle)
                    true (contains needle))
                [
                  "# TYPE raw_server_requests_total counter";
                  "# TYPE raw_server_request_seconds histogram";
                  "raw_server_request_seconds_bucket";
                ]));
    Alcotest.test_case "stats carries cumulative and windowed percentiles"
      `Slow (fun () ->
        with_telemetry_server ~parallelism:1 (fun c ->
            for i = 1 to 6 do
              ignore
                (query_ok c
                   (Printf.sprintf "SELECT COUNT(*) FROM t WHERE col0 < %d"
                      (100 + i)))
            done;
            (* the ticker snapshots every 50 ms; poll until a window delta
               that includes the queries above materializes *)
            let deadline = Unix.gettimeofday () +. 5.0 in
            let rec poll () =
              let j =
                match Server.Client.stats c with
                | Ok j -> j
                | Error e ->
                  Alcotest.failf "stats: %s" (Server.Client.err_to_string e)
              in
              let win10 =
                Option.bind (Jsons.member "latency" j) (fun l ->
                    Option.bind (Jsons.member "windows" l) (fun w ->
                        Jsons.member "10s" w))
              in
              match Option.bind win10 (Jsons.member "p99") with
              | Some _ ->
                let cum =
                  match
                    Option.bind (Jsons.member "latency" j)
                      (Jsons.member "cumulative")
                  with
                  | Some cum -> cum
                  | None ->
                    Alcotest.failf "no cumulative latency in %s"
                      (Jsons.to_string j)
                in
                Alcotest.(check bool) "cumulative count > 0" true
                  (match Jsons.member "count" cum with
                  | Some (Jsons.Int n) -> n > 0
                  | Some (Jsons.Float f) -> f > 0.
                  | _ -> false);
                List.iter
                  (fun p ->
                    Alcotest.(check bool) ("cumulative " ^ p) true
                      (Jsons.member p cum <> None))
                  [ "p50"; "p95"; "p99" ];
                let requests =
                  match
                    Option.bind win10 (Jsons.member "requests")
                  with
                  | Some (Jsons.Float f) -> f
                  | Some (Jsons.Int n) -> float_of_int n
                  | _ -> 0.
                in
                Alcotest.(check bool) "window saw the queries" true
                  (requests > 0.)
              | None ->
                if Unix.gettimeofday () > deadline then
                  Alcotest.failf "no 10s-window p99 within 5s: %s"
                    (Jsons.to_string j)
                else begin
                  Thread.delay 0.05;
                  poll ()
                end
            in
            poll ()));
  ]

let suites =
  [
    ("server.shared_scan", shared_scan_suite);
    ("server.cache", cache_suite);
    ("server.socket", server_suite);
    ("server.approx", approx_suite);
    ("server.telemetry", telemetry_suite);
  ]
