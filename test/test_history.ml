(* The feedback tier: workload history, cross-query percentile summary,
   cost-model calibration, and the executor wiring that joins an adaptive
   prediction against its measured outcome. *)

open Raw_core
module History = Raw_obs.History
module Summary = Raw_obs.Summary
module Calibration = Raw_obs.Calibration
module Io_stats = Raw_storage.Io_stats

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let sample_record =
  {
    History.ts = 1754400000.125;
    shape = "agg(;MAX($1))<-filter($0 < ?)<-scan(t:2)";
    access = "csv(sep=',')";
    strategy = "shreds";
    status = History.Completed;
    cpu_seconds = 0.012;
    io_seconds = 0.0546;
    compile_seconds = 0.01;
    total_seconds = 0.0766;
    rows_scanned = 20_000;
    result_rows = 1;
    parallelism = 1;
    sel_est = Some 0.5;
    sel_obs = Some 0.9955;
    cost_predicted = Some 43_500.;
    mispredicted = Some true;
    better = Some "full";
    tmpl_hits = 0;
    tmpl_misses = 2;
    pool_hits = 0;
    pool_misses = 1;
    degraded = [ "eviction pressure" ];
    errors_tolerated = 3;
    alloc_words = Some 123_456.;
    gc_minor = Some 7;
    gc_major = Some 1;
    bytes_copied = Some 65_536.;
  }

(* ------------------------------------------------------------------ *)
(* Record codec and store mechanics                                    *)
(* ------------------------------------------------------------------ *)

let store_suite =
  [
    Alcotest.test_case "record roundtrips through JSON" `Quick (fun () ->
        match History.of_json (History.to_json sample_record) with
        | Ok r ->
          Alcotest.(check bool) "identical" true (r = sample_record)
        | Error e -> Alcotest.failf "roundtrip failed: %s" e);
    Alcotest.test_case "optional fields drop cleanly" `Quick (fun () ->
        let r =
          {
            sample_record with
            History.sel_est = None;
            sel_obs = None;
            cost_predicted = None;
            mispredicted = None;
            better = None;
            status = History.Failed "data";
            degraded = [];
            alloc_words = None;
            gc_minor = None;
            gc_major = None;
            bytes_copied = None;
          }
        in
        let line = Raw_obs.Jsons.to_string (History.to_json r) in
        Alcotest.(check bool) "no sel_est key" false (contains line "sel_est");
        Alcotest.(check bool) "no alloc_words key" false
          (contains line "alloc_words");
        Alcotest.(check bool) "status tagged" true (contains line "error:data");
        match History.of_json (History.to_json r) with
        | Ok r' -> Alcotest.(check bool) "identical" true (r' = r)
        | Error e -> Alcotest.failf "roundtrip failed: %s" e);
    Alcotest.test_case "append rotates at max_bytes and keeps one \
                        generation" `Quick (fun () ->
        let path = Test_util.fresh_path ".jsonl" in
        let line_len =
          String.length (Raw_obs.Jsons.to_string (History.to_json sample_record)) + 1
        in
        History.append ~path ~max_bytes:line_len sample_record;
        History.append ~path ~max_bytes:line_len sample_record;
        History.append ~path ~max_bytes:line_len sample_record;
        let live, s1 = History.load path in
        let prev, s2 = History.load (path ^ ".1") in
        Alcotest.(check int) "no skips" 0 (s1 + s2);
        Alcotest.(check int) "live generation" 1 (List.length live);
        Alcotest.(check int) "rotated generation" 1 (List.length prev));
    Alcotest.test_case "load skips malformed lines, keeps the rest" `Quick
      (fun () ->
        let path = Test_util.fresh_path ".jsonl" in
        let good = Raw_obs.Jsons.to_string (History.to_json sample_record) in
        let oc = open_out path in
        output_string oc "not json at all\n";
        output_string oc (good ^ "\n");
        output_string oc "{\"ts\":1.0}\n";
        (* torn tail from a crashed writer *)
        output_string oc (String.sub good 0 (String.length good / 2));
        close_out oc;
        let records, skipped = History.load path in
        Alcotest.(check int) "one survivor" 1 (List.length records);
        Alcotest.(check int) "three skipped" 3 skipped);
    Alcotest.test_case "load of a missing file is empty, not an error" `Quick
      (fun () ->
        let records, skipped = History.load "/nonexistent/history.jsonl" in
        Alcotest.(check int) "no records" 0 (List.length records);
        Alcotest.(check int) "no skips" 0 skipped);
  ]

(* ------------------------------------------------------------------ *)
(* Summary percentiles                                                 *)
(* ------------------------------------------------------------------ *)

let summary_suite =
  [
    Alcotest.test_case "percentile is nearest-rank" `Quick (fun () ->
        let xs = [ 5.; 1.; 4.; 2.; 3. ] in
        let check name q want =
          Alcotest.(check (option (float 1e-9))) name want (Summary.percentile xs q)
        in
        check "p50 of 1..5" 0.5 (Some 3.);
        check "p99 takes the max" 0.99 (Some 5.);
        check "p0 clamps to the min" 0.0 (Some 1.);
        Alcotest.(check (option (float 1e-9)))
          "empty" None (Summary.percentile [] 0.5);
        Alcotest.(check (option (float 1e-9)))
          "bad q" None (Summary.percentile xs 1.5));
    Alcotest.test_case "by_access groups and orders percentiles" `Quick
      (fun () ->
        let rec_with access total =
          { sample_record with History.access; total_seconds = total }
        in
        let records =
          List.init 10 (fun i -> rec_with "csv" (float_of_int (i + 1)))
          @ [ rec_with "fwb" 0.5 ]
        in
        match Summary.by_access records with
        | [ csv; fwb ] ->
          Alcotest.(check string) "csv first" "csv" csv.Summary.key;
          Alcotest.(check int) "csv count" 10 csv.Summary.n;
          Alcotest.(check bool) "ordered" true
            (csv.Summary.p50 <= csv.Summary.p95
            && csv.Summary.p95 <= csv.Summary.p99);
          Alcotest.(check int) "fwb count" 1 fwb.Summary.n
        | l -> Alcotest.failf "expected 2 groups, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: a 30-query mixed workload through the executor          *)
(* ------------------------------------------------------------------ *)

let workload_suite =
  [
    Alcotest.test_case "30 adaptive queries: JSONL, percentiles, \
                        calibration, mispredict counter" `Slow (fun () ->
        let path = Test_util.fresh_path ".jsonl" in
        let config =
          { Config.default with Config.history_path = Some path }
        in
        let db = Test_util.grid_csv_db ~config ~n:2_000 ~m:4 () in
        let options = { Planner.default with Planner.shreds = Planner.Adaptive } in
        let mispredict_before =
          Io_stats.get "planner.mispredict.full"
          + Io_stats.get "planner.mispredict.shreds"
          + Io_stats.get "planner.mispredict.multishreds"
        in
        for i = 0 to 29 do
          (* col0 = 100 * row, so these sweep high observed selectivities
             against the stats-free 0.5 default estimate: guaranteed
             mispredictions on the early queries *)
          let threshold = 150_000 + (i * 1_000) in
          let q =
            match i mod 3 with
            | 0 -> Printf.sprintf "SELECT MAX(col1) FROM t WHERE col0 < %d" threshold
            | 1 -> Printf.sprintf "SELECT MIN(col2) FROM t WHERE col0 < %d" threshold
            | _ -> Printf.sprintf "SELECT MAX(col3) FROM t WHERE col0 < %d" threshold
          in
          ignore (Raw_db.query ~options db q)
        done;
        let mispredict_after =
          Io_stats.get "planner.mispredict.full"
          + Io_stats.get "planner.mispredict.shreds"
          + Io_stats.get "planner.mispredict.multishreds"
        in
        let records, skipped = History.load path in
        Alcotest.(check int) "every line parses" 0 skipped;
        Alcotest.(check int) "one record per query" 30 (List.length records);
        List.iter
          (fun (r : History.record) ->
            Alcotest.(check bool) "completed" true (r.status = History.Completed);
            Alcotest.(check bool)
              "concrete strategy" true
              (List.mem r.strategy [ "full"; "shreds"; "multishreds" ]);
            Alcotest.(check bool) "adaptive estimate joined" true
              (r.sel_est <> None);
            Alcotest.(check bool) "selectivity observed" true (r.sel_obs <> None))
          records;
        (* three distinct query shapes, one access path *)
        Alcotest.(check int) "shapes" 3 (List.length (Summary.by_shape records));
        (match Summary.by_access records with
        | [ g ] ->
          Alcotest.(check bool) "csv access path" true
            (String.length g.Summary.key >= 3 && String.sub g.Summary.key 0 3 = "csv");
          Alcotest.(check int) "all thirty" 30 g.Summary.n;
          Alcotest.(check bool) "percentiles ordered" true
            (g.Summary.p50 <= g.Summary.p95 && g.Summary.p95 <= g.Summary.p99)
        | l -> Alcotest.failf "expected 1 access group, got %d" (List.length l));
        (* the 0.5 default estimate against ~1.0 observed selectivity must
           produce at least one cost-model reversal, live and historical *)
        Alcotest.(check bool) "mispredict counter bumped" true
          (mispredict_after > mispredict_before);
        Alcotest.(check bool) "mispredicted record present" true
          (List.exists
             (fun (r : History.record) -> r.History.mispredicted = Some true)
             records);
        (match Calibration.of_records records with
        | [] -> Alcotest.fail "no calibration stats"
        | stats ->
          let total_meas =
            List.fold_left (fun a s -> a + s.Calibration.measurable) 0 stats
          in
          let total_mis =
            List.fold_left (fun a s -> a + s.Calibration.mispredicts) 0 stats
          in
          Alcotest.(check int) "all records measurable" 30 total_meas;
          Alcotest.(check bool) "calibration sees the mispredictions" true
            (total_mis >= 1);
          List.iter
            (fun (s : Calibration.strategy_stats) ->
              Alcotest.(check bool)
                (s.Calibration.strategy ^ " ratio positive") true
                (s.Calibration.sel_ratio_p50 > 0.))
            stats);
        (* report renderings stay printable *)
        let report = Format.asprintf "%a" Summary.pp_report records in
        Alcotest.(check bool) "report header" true
          (contains report "workload history");
        let cal =
          Format.asprintf "%a" Calibration.pp_report
            (Calibration.of_records records)
        in
        Alcotest.(check bool) "calibration legend" true (contains cal "selratio"));
    Alcotest.test_case "deadline-exceeded query still lands in history" `Slow
      (fun () ->
        let path = Test_util.fresh_path ".jsonl" in
        let config =
          {
            Config.default with
            Config.history_path = Some path;
            deadline = Some 1e-9;
          }
        in
        let db = Test_util.grid_csv_db ~config ~n:20_000 ~m:3 () in
        (match Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 1000000" with
        | _ -> Alcotest.fail "expected the 1ns deadline to trip"
        | exception _ -> ());
        let records, skipped = History.load path in
        Alcotest.(check int) "parses" 0 skipped;
        match records with
        | [ r ] ->
          Alcotest.(check bool) "status deadline" true
            (r.History.status = History.Deadline)
        | l -> Alcotest.failf "expected 1 record, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* Concurrent appenders                                                *)
(*                                                                     *)
(* The server gives the history file real concurrency for the first    *)
(* time: session threads and worker domains share one path. These      *)
(* tests drive it from parallel domains and require exactly N*M whole  *)
(* parseable lines — a torn line, dropped record, or double-rotation   *)
(* shows up as a count mismatch or a skip.                             *)
(* ------------------------------------------------------------------ *)

(* A record whose serialized length does not depend on [tag] as long as
   tag stays in [10_000, 99_999]: rotation thresholds computed from one
   line's length then hold for every line. *)
let tagged_record tag = { sample_record with History.rows_scanned = tag }

let concurrent_append ~path ~max_bytes ~domains ~per_domain =
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for j = 0 to per_domain - 1 do
              History.append ~path ?max_bytes
                (tagged_record (10_000 + (d * per_domain) + j))
            done))
  in
  List.iter Domain.join spawned

let concurrency_suite =
  [
    Alcotest.test_case "4 domains x 50 appends: every record lands whole"
      `Slow (fun () ->
        let path = Test_util.fresh_path ".jsonl" in
        concurrent_append ~path ~max_bytes:None ~domains:4 ~per_domain:50;
        let records, skipped = History.load path in
        Alcotest.(check int) "no torn lines" 0 skipped;
        Alcotest.(check int) "all 200 records" 200 (List.length records);
        Alcotest.(check bool) "no rotation" false
          (Sys.file_exists (path ^ ".1"));
        let tags =
          List.sort_uniq compare
            (List.map (fun (r : History.record) -> r.History.rows_scanned)
               records)
        in
        Alcotest.(check int) "every append distinct, none lost" 200
          (List.length tags));
    Alcotest.test_case "rotation under concurrency loses nothing" `Slow
      (fun () ->
        let path = Test_util.fresh_path ".jsonl" in
        let line_len =
          String.length
            (Raw_obs.Jsons.to_string (History.to_json (tagged_record 10_000)))
          + 1
        in
        (* threshold at 120 of 200 lines: exactly one rotation, wherever
           the domain interleaving puts it *)
        concurrent_append ~path
          ~max_bytes:(Some (120 * line_len))
          ~domains:4 ~per_domain:50;
        let live, s1 = History.load path in
        let prev, s2 = History.load (path ^ ".1") in
        Alcotest.(check bool) "rotated once" true
          (Sys.file_exists (path ^ ".1"));
        Alcotest.(check int) "no torn lines" 0 (s1 + s2);
        Alcotest.(check int) "rotated generation" 120 (List.length prev);
        Alcotest.(check int) "live generation" 80 (List.length live);
        let tags =
          List.sort_uniq compare
            (List.map
               (fun (r : History.record) -> r.History.rows_scanned)
               (live @ prev))
        in
        Alcotest.(check int) "every append accounted for" 200
          (List.length tags));
  ]

let suites =
  [
    ("history.store", store_suite);
    ("history.summary", summary_suite);
    ("history.workload", workload_suite);
    ("history.concurrency", concurrency_suite);
  ]
