open Raw_vector
open Raw_storage
open Raw_formats
open Test_util

(* ---------------- reference parser ---------------- *)

let parser_tests =
  [
    Alcotest.test_case "scalars and composites" `Quick (fun () ->
        (match Jsonl.parse "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}" with
         | Jsonl.Object
             [ ("a", Jsonl.Number 1.); ("b", Jsonl.Array [ Bool true; Null ]);
               ("c", Object [ ("d", String "x") ]) ] -> ()
         | _ -> Alcotest.fail "parse shape");
        (match Jsonl.parse "  [1, 2.5, -3]  " with
         | Jsonl.Array [ Number 1.; Number 2.5; Number -3. ] -> ()
         | _ -> Alcotest.fail "array shape"));
    Alcotest.test_case "string escapes" `Quick (fun () ->
        (match Jsonl.parse {|{"s":"a\"b\\c\nd"}|} with
         | Jsonl.Object [ ("s", String "a\"b\\c\nd") ] -> ()
         | _ -> Alcotest.fail "escapes");
        match Jsonl.parse {|"é"|} with
        | Jsonl.String "\xc3\xa9" -> ()
        | _ -> Alcotest.fail "unicode escape");
    Alcotest.test_case "empty object and array" `Quick (fun () ->
        Alcotest.(check bool) "obj" true (Jsonl.parse "{}" = Jsonl.Object []);
        Alcotest.(check bool) "arr" true (Jsonl.parse "[]" = Jsonl.Array []));
    Alcotest.test_case "malformed input raises" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) ("reject " ^ s) true
              (try
                 ignore (Jsonl.parse s);
                 false
               with Scan_errors.Error _ -> true))
          [ "{"; "{\"a\" 1}"; "{\"a\":}"; "[1,"; "\"unterminated"; "{} junk" ]);
    Alcotest.test_case "writer roundtrips through parser" `Quick (fun () ->
        let path = fresh_path ".jsonl" in
        Jsonl.write_file ~path
          (List.to_seq
             [
               [ ("id", Value.Int 7); ("name", Value.String "it's \"x\"");
                 ("user.age", Value.Int 30); ("user.vip", Value.Bool true);
                 ("score", Value.Float 1.5) ];
             ]);
        let line = In_channel.with_open_bin path In_channel.input_all in
        match Jsonl.parse (String.trim line) with
        | Jsonl.Object
            [ ("id", Number 7.); ("name", String "it's \"x\"");
              ("user", Object [ ("age", Number 30.); ("vip", Bool true) ]);
              ("score", Number 1.5) ] -> ()
        | _ -> Alcotest.fail "roundtrip shape");
  ]

(* ---------------- extraction ---------------- *)

let extract_one src paths =
  let buf = Bytes.of_string src in
  let out = Hashtbl.create 8 in
  let trie = Jsonl.Extract.compile (List.map (fun p -> (String.split_on_char '.' p, p)) paths) in
  let emit name (kind : Jsonl.Extract.kind) s l =
    let v =
      match kind with
      | Nul -> "NULL"
      | Scalar -> Bytes.sub_string buf s l
      | Quoted false -> Bytes.sub_string buf s l
      | Quoted true -> Jsonl.unescape buf s l
    in
    Hashtbl.replace out name v
  in
  ignore (Jsonl.Extract.run buf ~pos:0 ~wanted:trie ~emit);
  fun name -> Hashtbl.find_opt out name

let extract_tests =
  [
    Alcotest.test_case "flat fields in any order" `Quick (fun () ->
        let get = extract_one "{\"b\":2,\"a\":1,\"c\":3}" [ "a"; "c" ] in
        Alcotest.(check (option string)) "a" (Some "1") (get "a");
        Alcotest.(check (option string)) "c" (Some "3") (get "c");
        Alcotest.(check (option string)) "b skipped" None (get "b"));
    Alcotest.test_case "nested paths" `Quick (fun () ->
        let get =
          extract_one "{\"u\":{\"id\":9,\"tags\":[1,2]},\"x\":0}" [ "u.id"; "x" ]
        in
        Alcotest.(check (option string)) "u.id" (Some "9") (get "u.id");
        Alcotest.(check (option string)) "x" (Some "0") (get "x"));
    Alcotest.test_case "missing fields emit nothing" `Quick (fun () ->
        let get = extract_one "{\"a\":1}" [ "a"; "zz" ] in
        Alcotest.(check (option string)) "zz" None (get "zz"));
    Alcotest.test_case "null and strings with escapes" `Quick (fun () ->
        let get = extract_one {|{"s":"x\ny","n":null}|} [ "s"; "n" ] in
        Alcotest.(check (option string)) "s" (Some "x\ny") (get "s");
        Alcotest.(check (option string)) "n" (Some "NULL") (get "n"));
    Alcotest.test_case "skips composites containing braces in strings" `Quick
      (fun () ->
        let get =
          extract_one {|{"junk":{"s":"}{][","d":[1,{"x":2}]},"a":5}|} [ "a" ]
        in
        Alcotest.(check (option string)) "a" (Some "5") (get "a"));
    Alcotest.test_case "conflicting paths rejected" `Quick (fun () ->
        Alcotest.(check bool) "leaf+prefix" true
          (try
             ignore (Jsonl.Extract.compile [ ([ "a" ], 0); ([ "a"; "b" ], 1) ]);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "duplicate" true
          (try
             ignore (Jsonl.Extract.compile [ ([ "a" ], 0); ([ "a" ], 1) ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "run returns end position" `Quick (fun () ->
        let src = "{\"a\":1} trailing" in
        let buf = Bytes.of_string src in
        let trie = Jsonl.Extract.compile [ ([ "a" ], ()) ] in
        let stop = Jsonl.Extract.run buf ~pos:0 ~wanted:trie ~emit:(fun _ _ _ _ -> ()) in
        Alcotest.(check int) "pos after object" 7 stop);
  ]

(* ---------------- rows / generation ---------------- *)

let rows_tests =
  [
    Alcotest.test_case "row_starts and count" `Quick (fun () ->
        let path = fresh_path ".jsonl" in
        Out_channel.with_open_bin path (fun oc ->
            output_string oc "{\"a\":1}\n\n{\"a\":2}\n{\"a\":3}");
        let f = Raw_storage.Mmap_file.open_file path in
        Alcotest.(check int) "count" 3 (Jsonl.count_rows f);
        Alcotest.(check (array int)) "starts" [| 0; 9; 17 |] (Jsonl.row_starts f));
    Alcotest.test_case "generate: parseable, deterministic, missing fields"
      `Quick (fun () ->
        let fields =
          [ ("id", Dtype.Int); ("user.name", Dtype.String); ("score", Dtype.Float) ]
        in
        let p1 = fresh_path ".jsonl" and p2 = fresh_path ".jsonl" in
        Jsonl.generate ~path:p1 ~n_rows:50 ~fields ~missing_probability:0.3
          ~seed:8 ();
        Jsonl.generate ~path:p2 ~n_rows:50 ~fields ~missing_probability:0.3
          ~seed:8 ();
        let read p = In_channel.with_open_bin p In_channel.input_all in
        Alcotest.(check string) "deterministic" (read p1) (read p2);
        String.split_on_char '\n' (read p1)
        |> List.filter (fun l -> String.trim l <> "")
        |> List.iter (fun line ->
               match Jsonl.parse line with
               | Jsonl.Object _ -> ()
               | _ -> Alcotest.fail "non-object row"));
  ]

(* ---------------- scan kernels + SQL ---------------- *)

let jsonl_db ?(missing = 0.) () =
  let path = fresh_path ".jsonl" in
  let fields =
    [ ("id", Dtype.Int); ("user.name", Dtype.String); ("user.score", Dtype.Float);
      ("active", Dtype.Bool) ]
  in
  Jsonl.generate ~path ~n_rows:300 ~fields ~missing_probability:missing ~seed:77 ();
  let db = Raw_core.Raw_db.create () in
  Raw_core.Raw_db.register_jsonl db ~name:"logs" ~path ~columns:fields;
  (db, path, fields)

let reference_rows path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map Jsonl.parse

let field_of_json json path =
  let rec go j = function
    | [] -> None
    | k :: rest ->
      (match j with
       | Jsonl.Object fields ->
         (match List.assoc_opt k fields with
          | Some v -> if rest = [] then Some v else go v rest
          | None -> None)
       | _ -> None)
  in
  go json (String.split_on_char '.' path)

let sql_tests =
  [
    Alcotest.test_case "count and max agree with reference parse" `Quick (fun () ->
        let db, path, _ = jsonl_db () in
        let rows = reference_rows path in
        check_value "count" (Int (List.length rows))
          (Raw_core.Raw_db.scalar db "SELECT COUNT(*) FROM logs");
        let want_max =
          List.fold_left
            (fun acc j ->
              match field_of_json j "id" with
              | Some (Jsonl.Number x) -> max acc (int_of_float x)
              | _ -> acc)
            min_int rows
        in
        check_value "max id" (Int want_max)
          (Raw_core.Raw_db.scalar db "SELECT MAX(id) FROM logs"));
    Alcotest.test_case "dotted paths in SQL" `Quick (fun () ->
        let db, path, _ = jsonl_db () in
        let rows = reference_rows path in
        let want =
          List.fold_left
            (fun acc j ->
              match field_of_json j "user.score" with
              | Some (Jsonl.Number x) -> max acc x
              | _ -> acc)
            neg_infinity rows
        in
        let got =
          Value.to_float
            (Raw_core.Raw_db.scalar db "SELECT MAX(user.score) FROM logs")
        in
        Alcotest.(check (float 1e-6)) "max user.score" want got);
    Alcotest.test_case "missing fields are NULL (skipped by filters/aggs)"
      `Quick (fun () ->
        let db, path, _ = jsonl_db ~missing:0.4 () in
        let rows = reference_rows path in
        let present =
          List.length
            (List.filter (fun j -> field_of_json j "id" <> None) rows)
        in
        check_value "count of non-null ids" (Int present)
          (Raw_core.Raw_db.scalar db "SELECT COUNT(*) FROM logs WHERE id >= 0"));
    Alcotest.test_case "all access modes agree" `Quick (fun () ->
        let reference = ref None in
        List.iter
          (fun access ->
            let db, _, _ = jsonl_db ~missing:0.2 () in
            Raw_core.Raw_db.set_options db { Raw_core.Planner.default with access };
            let got =
              rows_of_chunk
                (Raw_core.Raw_db.sql db
                   "SELECT user.name, id FROM logs WHERE user.score > \
                    500000000.0 ORDER BY id LIMIT 20")
            in
            match !reference with
            | None -> reference := Some got
            | Some want ->
              Alcotest.(check bool)
                (Raw_core.Access.mode_to_string access ^ " agrees")
                true (got = want))
          [ Raw_core.Access.Dbms; Raw_core.Access.External;
            Raw_core.Access.In_situ; Raw_core.Access.Jit ]);
    Alcotest.test_case "second query hits shreds (no re-extraction)" `Quick
      (fun () ->
        let db, _, _ = jsonl_db () in
        let q = "SELECT MAX(user.score) FROM logs WHERE id < 900000000" in
        ignore (Raw_core.Raw_db.query db q);
        let r2 = Raw_core.Raw_db.query db q in
        Alcotest.(check (option (float 0.))) "no new extraction" None
          (List.assoc_opt "jsonl.values_extracted" r2.counters));
    Alcotest.test_case "join jsonl with csv" `Quick (fun () ->
        let jpath = fresh_path ".jsonl" in
        Jsonl.write_file ~path:jpath
          (Seq.init 20 (fun i ->
               [ ("key", Value.Int i); ("payload", Value.Int (i * 11)) ]));
        let cpath = write_csv_rows (List.init 10 (fun i -> [ i * 2; i ])) in
        let db = Raw_core.Raw_db.create () in
        Raw_core.Raw_db.register_jsonl db ~name:"j" ~path:jpath
          ~columns:[ ("key", Dtype.Int); ("payload", Dtype.Int) ];
        Raw_core.Raw_db.register_csv db ~name:"c" ~path:cpath
          ~columns:[ ("k", Dtype.Int); ("v", Dtype.Int) ] ();
        check_value "matches" (Int 10)
          (Raw_core.Raw_db.scalar db "SELECT COUNT(*) FROM j JOIN c ON j.key = c.k");
        check_value "payload of matched" (Int (18 * 11))
          (Raw_core.Raw_db.scalar db
             "SELECT MAX(j.payload) FROM j JOIN c ON j.key = c.k"));
  ]

(* ---------------- flattened child tables (arrays of objects) --------- *)

let orders_file () =
  let path = fresh_path ".jsonl" in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc
        ({|{"id":0,"items":[{"sku":"a","qty":2},{"sku":"b","qty":5}],"x":1}|}
        ^ "\n"
        ^ {|{"id":1,"items":[],"x":2}|}
        ^ "\n" ^ {|{"id":2,"x":3}|} ^ "\n"
        ^ {|{"id":3,"items":[{"sku":"c","qty":1},7,{"qty":9}],"x":4}|}
        ^ "\n"));
  path

let array_tests =
  [
    Alcotest.test_case "iter_array_objects finds element offsets" `Quick
      (fun () ->
        let src = {|{"a":{"arr":[{"x":1},2,{"x":3}]},"z":0}|} in
        let buf = Bytes.of_string src in
        let hits = ref [] in
        let stop =
          Jsonl.Extract.iter_array_objects buf ~pos:0 ~path:[ "a"; "arr" ]
            ~f:(fun p -> hits := p :: !hits)
        in
        Alcotest.(check int) "two objects" 2 (List.length !hits);
        Alcotest.(check int) "row end" (String.length src) stop;
        (* each hit starts an object *)
        List.iter
          (fun p -> Alcotest.(check char) "brace" '{' (Bytes.get buf p))
          !hits);
    Alcotest.test_case "missing path or non-array yields nothing" `Quick
      (fun () ->
        let run src path =
          let hits = ref 0 in
          ignore
            (Jsonl.Extract.iter_array_objects (Bytes.of_string src) ~pos:0
               ~path ~f:(fun _ -> incr hits));
          !hits
        in
        Alcotest.(check int) "missing" 0 (run {|{"a":1}|} [ "b" ]);
        Alcotest.(check int) "not array" 0 (run {|{"a":1}|} [ "a" ]));
    Alcotest.test_case "child table scans and joins with parent" `Quick
      (fun () ->
        let path = orders_file () in
        let db = Raw_core.Raw_db.create () in
        Raw_core.Raw_db.register_jsonl db ~name:"orders" ~path
          ~columns:[ ("id", Dtype.Int); ("x", Dtype.Int) ];
        Raw_core.Raw_db.register_jsonl_array db ~name:"items" ~path
          ~array_path:"items"
          ~columns:[ ("sku", Dtype.String); ("qty", Dtype.Int) ];
        check_value "element count (non-object skipped)" (Int 4)
          (Raw_core.Raw_db.scalar db "SELECT COUNT(*) FROM items");
        check_value "qty sum" (Int 17)
          (Raw_core.Raw_db.scalar db "SELECT SUM(qty) FROM items");
        (* missing sku in last element reads as NULL *)
        check_value "skus present" (Int 3)
          (Raw_core.Raw_db.scalar db
             "SELECT COUNT(*) FROM items WHERE sku >= ''");
        (* join child to parent through the parent row id *)
        let c =
          Raw_core.Raw_db.sql db
            "SELECT orders.id, SUM(items.qty) AS total FROM items JOIN orders \
             ON items.parent = orders.id GROUP BY orders.id ORDER BY id"
        in
        Alcotest.(check bool) "grouped join" true
          (rows_of_chunk c
          = [ [ Value.Int 0; Value.Int 7 ]; [ Value.Int 3; Value.Int 10 ] ]));
    Alcotest.test_case "child table all access modes agree" `Quick (fun () ->
        let reference = ref None in
        List.iter
          (fun access ->
            let path = orders_file () in
            let db = Raw_core.Raw_db.create () in
            Raw_core.Raw_db.set_options db { Raw_core.Planner.default with access };
            Raw_core.Raw_db.register_jsonl_array db ~name:"items" ~path
              ~array_path:"items"
              ~columns:[ ("sku", Dtype.String); ("qty", Dtype.Int) ];
            let got =
              rows_of_chunk
                (Raw_core.Raw_db.sql db
                   "SELECT parent, qty FROM items WHERE qty > 1 ORDER BY qty")
            in
            match !reference with
            | None -> reference := Some got
            | Some want ->
              Alcotest.(check bool)
                (Raw_core.Access.mode_to_string access)
                true (got = want))
          [ Raw_core.Access.Dbms; Raw_core.Access.External;
            Raw_core.Access.In_situ; Raw_core.Access.Jit ]);
  ]

(* jit/interp parity on the raw kernels *)
let kernel_tests =
  [
    Alcotest.test_case "seq_scan modes agree" `Quick (fun () ->
        let path = fresh_path ".jsonl" in
        let fields = [ ("a", Dtype.Int); ("n.b", Dtype.Float); ("s", Dtype.String) ] in
        Jsonl.generate ~path ~n_rows:100 ~fields ~missing_probability:0.2 ~seed:3 ();
        let file = Raw_storage.Mmap_file.open_file path in
        let schema = Schema.of_pairs fields in
        let run mode =
          Raw_core.Scan_jsonl.seq_scan ~mode ~file ~schema ~needed:[ 0; 1; 2 ] ()
        in
        let ji, js = run Raw_core.Scan_csv.Jit in
        let ii, is_ = run Raw_core.Scan_csv.Interpreted in
        Alcotest.(check (array int)) "row starts equal" js is_;
        Array.iteri (fun k c -> check_column "columns equal" c ii.(k)) ji);
    Alcotest.test_case "fetch subset equals scan gather" `Quick (fun () ->
        let path = fresh_path ".jsonl" in
        let fields = [ ("a", Dtype.Int); ("b", Dtype.Int) ] in
        Jsonl.generate ~path ~n_rows:60 ~fields ~seed:4 ();
        let file = Raw_storage.Mmap_file.open_file path in
        let schema = Schema.of_pairs fields in
        let full, starts =
          Raw_core.Scan_jsonl.seq_scan ~mode:Raw_core.Scan_csv.Jit ~file ~schema
            ~needed:[ 1 ] ()
        in
        let rowids = [| 3; 17; 42; 59 |] in
        let fetched =
          Raw_core.Scan_jsonl.fetch ~mode:Raw_core.Scan_csv.Jit ~file ~schema
            ~row_starts:starts ~cols:[ 1 ] ~rowids ()
        in
        check_column "subset" (Column.gather full.(0) rowids) fetched.(0));
  ]

let suites =
  [
    ("jsonl.parser", parser_tests);
    ("jsonl.extract", extract_tests);
    ("jsonl.rows", rows_tests);
    ("jsonl.sql", sql_tests);
    ("jsonl.arrays", array_tests);
    ("jsonl.kernels", kernel_tests);
  ]
