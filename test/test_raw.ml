let () =
  Alcotest.run "raw"
    (Test_vector.suites @ Test_storage.suites @ Test_formats.suites
   @ Test_jsonl.suites @ Test_engine.suites @ Test_sql.suites @ Test_core.suites
   @ Test_access.suites @ Test_planner.suites @ Test_integration.suites
   @ Test_index.suites @ Test_cost.suites @ Test_executor.suites @ Test_props.suites
   @ Test_faults.suites @ Test_governance.suites @ Test_obs.suites
   @ Test_history.suites @ Test_server.suites @ Test_server_chaos.suites
   @ Test_approx.suites @ Test_prof.suites)
