(* Resource profiler: folded-stack export, profiled-vs-unprofiled
   bit-identity, copy-site determinism, and the Jsons fuzz that backs
   the profile/history serialization path. *)

open Raw_core
open Raw_vector
open Test_util
module Trace = Raw_obs.Trace
module Prof = Raw_obs.Prof
module Jsons = Raw_obs.Jsons
module Prof_gate = Raw_storage.Prof_gate

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let span ?parent ?(tid = 0) ?(args = []) ~id ~name ~dur () =
  {
    Trace.id;
    parent;
    name;
    cat = "q";
    tid;
    start_s = 0.;
    dur_s = dur;
    args;
  }

(* ------------------------------------------------------------------ *)
(* Folded-stack exporter                                               *)
(* ------------------------------------------------------------------ *)

let folded_suite =
  [
    Alcotest.test_case "known tree: exclusive wall and per-domain alloc"
      `Quick (fun () ->
        (* query(100us, 1000w) -> scan(60us, 400w) -> morsel(10us, 300w,
           tid 1). Wall exclusive subtracts children on any domain;
           alloc exclusive subtracts same-tid children only (GC deltas
           are per-domain, so the cross-domain morsel never contributed
           to scan's inclusive words). *)
        let spans =
          [
            span ~id:1 ~name:"query" ~dur:100e-6
              ~args:[ ("alloc.minor", "1000"); ("alloc.major", "0") ]
              ();
            span ~id:2 ~parent:1 ~name:"scan" ~dur:60e-6
              ~args:[ ("alloc.minor", "400") ]
              ();
            span ~id:3 ~parent:2 ~tid:1 ~name:"morsel" ~dur:10e-6
              ~args:[ ("alloc.minor", "300") ]
              ();
          ]
        in
        Alcotest.(check string)
          "folded lines"
          "alloc;query 600\n\
           alloc;query;scan 400\n\
           alloc;query;scan;morsel 300\n\
           wall;query 40\n\
           wall;query;scan 50\n\
           wall;query;scan;morsel 10\n"
          (Prof.folded_of_spans spans));
    Alcotest.test_case "parallel children clamp exclusive wall to zero"
      `Quick (fun () ->
        (* two 8us children overlap inside a 10us parent: exclusive wall
           would be -6us; it clamps to 0 and the parent line is omitted *)
        let spans =
          [
            span ~id:1 ~name:"scan" ~dur:10e-6 ();
            span ~id:2 ~parent:1 ~tid:1 ~name:"morsel" ~dur:8e-6 ();
            span ~id:3 ~parent:1 ~tid:2 ~name:"morsel" ~dur:8e-6 ();
          ]
        in
        Alcotest.(check string)
          "no negative weights, no alloc root for unprofiled spans"
          "wall;scan;morsel 16\n"
          (Prof.folded_of_spans spans));
    Alcotest.test_case "frame names sanitize the structural separators"
      `Quick (fun () ->
        let spans = [ span ~id:1 ~name:"a;b c\nd" ~dur:5e-6 () ] in
        Alcotest.(check string)
          "separators replaced" "wall;a_b_c_d 5\n"
          (Prof.folded_of_spans spans));
    Alcotest.test_case "folded_of_copies keeps positive copy sites only"
      `Quick (fun () ->
        Alcotest.(check string)
          "two-frame copies lines"
          "copies;builder.column 64\ncopies;csv.field 123\n"
          (Prof.folded_of_copies
             [
               ("bytes.copied.csv.field", 123.);
               ("bytes.copied.builder.column", 64.);
               ("bytes.copied.idle", 0.);
               ("scan.rows_scanned", 999.);
             ]));
    Alcotest.test_case "parse_folded round-trips and skips malformed lines"
      `Quick (fun () ->
        let text =
          "wall;query 40\n\
           garbage\n\
           stack notanumber\n\
           ;toothless -3\n\
           copies;csv.field 123\n"
        in
        Alcotest.(check (list (pair (list string) int)))
          "parsed rows"
          [ ([ "wall"; "query" ], 40); ([ "copies"; "csv.field" ], 123) ]
          (Prof.parse_folded text);
        (* a full export survives the round trip *)
        let folded =
          Prof.folded_of_spans
            [
              span ~id:1 ~name:"query" ~dur:100e-6 ();
              span ~id:2 ~parent:1 ~name:"scan" ~dur:60e-6 ();
            ]
        in
        Alcotest.(check (list (pair (list string) int)))
          "export parses back"
          [ ([ "wall"; "query" ], 40); ([ "wall"; "query"; "scan" ], 60) ]
          (Prof.parse_folded folded));
    Alcotest.test_case "pp_report ranks stacks per root" `Quick (fun () ->
        let text =
          "wall;query;scan 75\nwall;query 25\nalloc;query 10\n\
           copies;csv.field 5\nwall;query;scan 25\n"
        in
        let report = Format.asprintf "%a" Prof.pp_report text in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              ("report contains " ^ needle)
              true (contains report needle))
          [
            "5 folded line(s), 3 root(s)";
            "wall — total 125 us";
            (* the two wall;query;scan lines re-aggregate to 100 = 80% *)
            "80.0%          100  query;scan";
            "alloc — total 10 words";
            "copies — total 5 bytes";
          ];
        let empty = Format.asprintf "%a" Prof.pp_report "" in
        Alcotest.(check bool)
          "empty input says so" true
          (contains empty "no folded samples"));
  ]

(* ------------------------------------------------------------------ *)
(* Profiling must not change results: bit-identity across formats and  *)
(* parallelism                                                         *)
(* ------------------------------------------------------------------ *)

let differential_suite =
  let csv_path, fwb_path =
    lazy (twin_files ~n_rows:600 ~dtypes:[| Dtype.Int; Dtype.Float |] ~seed:11)
    |> fun l -> (lazy (fst (Lazy.force l)), lazy (snd (Lazy.force l)))
  in
  let jsonl_path =
    lazy
      (let path = fresh_path ".jsonl" in
       Raw_formats.Jsonl.generate ~path ~n_rows:600
         ~fields:[ ("a", Dtype.Int); ("x", Dtype.Float) ]
         ~seed:11 ();
       path)
  in
  let hep_path =
    lazy
      (let path = fresh_path ".hep" in
       Raw_formats.Hep.generate ~path ~n_events:200 ~seed:11 ();
       path)
  in
  let cols = [ ("col0", Dtype.Int); ("col1", Dtype.Float) ] in
  let cases =
    [
      ( "csv",
        (fun db ->
          Raw_db.register_csv db ~name:"t" ~path:(Lazy.force csv_path)
            ~columns:cols ()),
        "SELECT COUNT(*), SUM(col1), MIN(col0) FROM t WHERE col0 < 500000000"
      );
      ( "fwb",
        (fun db ->
          Raw_db.register_fwb db ~name:"t" ~path:(Lazy.force fwb_path)
            ~columns:cols),
        "SELECT COUNT(*), SUM(col1), MIN(col0) FROM t WHERE col0 < 500000000"
      );
      ( "jsonl",
        (fun db ->
          Raw_db.register_jsonl db ~name:"t" ~path:(Lazy.force jsonl_path)
            ~columns:[ ("a", Dtype.Int); ("x", Dtype.Float) ]),
        "SELECT COUNT(*), SUM(x), AVG(x) FROM t WHERE a < 500000000" );
      ( "hep",
        (fun db ->
          Raw_db.register_hep db ~name_prefix:"h" ~path:(Lazy.force hep_path)),
        "SELECT COUNT(*), SUM(pt) FROM h_muons WHERE pt > 10.0" );
    ]
  in
  let run ~profile ~par register query =
    let config = { Config.default with Config.parallelism = par; profile } in
    let db = Raw_db.create ~config () in
    register db;
    Raw_db.query db query
  in
  List.concat_map
    (fun (fmt, register, query) ->
      List.map
        (fun par ->
          Alcotest.test_case
            (Printf.sprintf "%s / par %d: profiled result bit-identical" fmt
               par)
            `Quick
            (fun () ->
              let off = run ~profile:false ~par register query in
              let on = run ~profile:true ~par register query in
              check_chunk "same chunk" off.Executor.chunk on.Executor.chunk;
              (* profiling adds alloc.*/gc.*/bytes.copied.* counters but
                 must not move any pre-existing work counter; drop the
                 wall-clock entries (latency histograms, per-domain
                 seconds) exactly as the par/seq shape test does *)
              let work (r : Executor.report) =
                List.filter
                  (fun (k, _) ->
                    k <> "posmap.segments_merged"
                    && k <> "io.simulated_seconds"
                    && (not (String.starts_with ~prefix:"alloc." k))
                    && (not (String.starts_with ~prefix:"gc." k))
                    && (not (String.starts_with ~prefix:"bytes.copied." k))
                    &&
                    match Raw_obs.Metrics.owner k with
                    | Some m ->
                      Raw_obs.Metrics.kind m <> Raw_obs.Metrics.Histogram
                    | None -> true)
                  r.Executor.counters
              in
              (* counter deltas are computed against each run's prior
                 accumulated float state, so float-valued entries (the
                 simulated compile charge) can differ in the last ulp *)
              Alcotest.(check (list (pair string (float 1e-9))))
                "work counters unmoved" (work off) (work on)))
        [ 1; 4 ])
    cases

(* ------------------------------------------------------------------ *)
(* Deterministic copy sites: par == seq                                *)
(* ------------------------------------------------------------------ *)

(* The per-row copy sites charge exactly once per value regardless of
   morsel fan-out, so a profiled query must report identical byte counts
   at parallelism 1 and 4. (builder.grow is excluded — growth doubling
   depends on per-builder row counts, which are morsel-local — and
   builder.column is deterministic only for null-free data, which all
   three generators below produce.) *)
let deterministic_sites =
  [
    "bytes.copied.csv.field";
    "bytes.copied.csv.value";
    "bytes.copied.jsonl.value";
    "bytes.copied.jsonl.unescape";
    "bytes.copied.hep.particles";
    "bytes.copied.builder.column";
  ]

let site_vector (r : Executor.report) =
  List.map
    (fun k ->
      ( k,
        match List.assoc_opt k r.Executor.counters with
        | Some v -> v
        | None -> 0. ))
    deterministic_sites

let determinism_suite =
  let profiled par = { Config.default with Config.parallelism = par; profile = true } in
  let case ?(expect_bytes = true) name build query =
    Alcotest.test_case (name ^ ": copy bytes par == seq") `Quick (fun () ->
        let run par =
          let db = Raw_db.create ~config:(profiled par) () in
          build db;
          Raw_db.query db query
        in
        let r1 = run 1 and r4 = run 4 in
        Alcotest.(check (list (pair string (float 0.))))
          "identical copy-site bytes" (site_vector r1) (site_vector r4);
        if expect_bytes then
          Alcotest.(check bool)
            "profiling observed at least one copy site" true
            (List.exists (fun (_, v) -> v > 0.) (site_vector r1)))
  in
  let csv_build db =
    let path = write_csv_rows (grid_rows 400 4) in
    Raw_db.register_csv db ~name:"t" ~path ~columns:(int_cols 4) ()
  in
  let jsonl_build db =
    let path = fresh_path ".jsonl" in
    Raw_formats.Jsonl.generate ~path ~n_rows:400
      ~fields:[ ("a", Dtype.Int); ("x", Dtype.Float) ]
      ~missing_probability:0. ~seed:13 ();
    Raw_db.register_jsonl db ~name:"t" ~path
      ~columns:[ ("a", Dtype.Int); ("x", Dtype.Float) ]
  in
  let hep_build db =
    let path = fresh_path ".hep" in
    Raw_formats.Hep.generate ~path ~n_events:150 ~seed:13 ();
    Raw_db.register_hep db ~name_prefix:"h" ~path
  in
  [
    case "csv" csv_build "SELECT SUM(col1) FROM t WHERE col0 < 30000";
    case "jsonl" jsonl_build "SELECT SUM(x) FROM t WHERE a < 500000000";
    (* the HEP particle scan reads fields by index straight off the map
       (zero-copy), so its deterministic vector is all zeros — the
       equality still pins that profiling added no morsel-local copies *)
    case ~expect_bytes:false "hep" hep_build
      "SELECT COUNT(*), SUM(pt) FROM h_muons WHERE pt > 5.0";
  ]
  @ [
      Alcotest.test_case "profiled query bumps only declared keys" `Quick
        (fun () ->
          let db =
            grid_csv_db ~config:{ Config.default with profile = true } ~n:80
              ~m:4 ()
          in
          let before = Raw_storage.Io_stats.snapshot () in
          ignore (Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 4000");
          let undeclared =
            List.filter_map
              (fun (k, v) ->
                let v0 =
                  match List.assoc_opt k before with Some x -> x | None -> 0.
                in
                if v -. v0 <> 0. && Raw_obs.Metrics.owner k = None then Some k
                else None)
              (Raw_storage.Io_stats.snapshot ())
          in
          Alcotest.(check (list string)) "no undeclared keys" [] undeclared);
      Alcotest.test_case "gate off: copy sites stay silent" `Quick (fun () ->
          let site = Prof_gate.site "test.silent" in
          Prof_gate.with_gate false (fun () -> Prof_gate.copy site 4096);
          Alcotest.(check (float 0.))
            "no bytes recorded" 0.
            (Raw_storage.Io_stats.get_float "bytes.copied.test.silent");
          Prof_gate.with_gate true (fun () -> Prof_gate.copy site 4096);
          Alcotest.(check (float 0.))
            "gate up records" 4096.
            (Raw_storage.Io_stats.get_float "bytes.copied.test.silent"));
    ]

(* ------------------------------------------------------------------ *)
(* Jsons fuzz: the serialization layer under history + profile export  *)
(* ------------------------------------------------------------------ *)

(* What the writer is allowed to normalize: nan/inf emit as 0, and
   integral floats below 1e15 print without a fraction, so they parse
   back as Int (exactly — they are below 2^53). Everything else must
   round-trip bit-exactly. *)
let rec normalize = function
  | Jsons.Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Jsons.Int 0
    else if Float.is_integer f && Float.abs f < 1e15 then
      Jsons.Int (int_of_float f)
    else Jsons.Float f
  | Jsons.List l -> Jsons.List (List.map normalize l)
  | Jsons.Obj l -> Jsons.Obj (List.map (fun (k, v) -> (k, normalize v)) l)
  | v -> v

let gen_byte_string =
  QCheck2.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12))

let gen_float =
  QCheck2.Gen.(
    oneof
      [
        oneofl
          [
            Float.nan;
            Float.infinity;
            Float.neg_infinity;
            -0.;
            0.;
            3.0;
            -7.0;
            1e14;
            1e15;
            1e20;
            -1e15;
            0.1;
            Float.pi;
            4.9e-324;
            1.7976931348623157e308;
            1e-308;
            123456789.123456789;
            1726000000.123456;
          ];
        float;
      ])

let gen_json =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return Jsons.Null;
                 map (fun b -> Jsons.Bool b) bool;
                 map (fun i -> Jsons.Int i) int;
                 map (fun f -> Jsons.Float f) gen_float;
                 map (fun s -> Jsons.Str s) gen_byte_string;
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (2, leaf);
                 ( 1,
                   map
                     (fun l -> Jsons.List l)
                     (list_size (int_bound 4) (self (n / 2))) );
                 ( 1,
                   map
                     (fun l -> Jsons.Obj l)
                     (list_size (int_bound 4)
                        (pair gen_byte_string (self (n / 2)))) );
               ]))

let fuzz_suite =
  [
    qtest ~count:500 "to_string/parse round-trips modulo float normalization"
      gen_json
      (fun v -> Jsons.parse (Jsons.to_string v) = Ok (normalize v));
    qtest ~count:500 "adversarial byte strings survive exactly"
      gen_byte_string
      (fun s ->
        Jsons.parse (Jsons.to_string (Jsons.Str s)) = Ok (Jsons.Str s));
    qtest ~count:500 "object keys survive exactly"
      QCheck2.Gen.(pair gen_byte_string gen_byte_string)
      (fun (k, s) ->
        Jsons.parse (Jsons.to_string (Jsons.Obj [ (k, Jsons.Str s) ]))
        = Ok (Jsons.Obj [ (k, Jsons.Str s) ]));
    qtest ~count:500 "float round-trip is exact or the documented clamp"
      gen_float
      (fun f ->
        match Jsons.parse (Jsons.to_string (Jsons.Float f)) with
        | Ok v -> v = normalize (Jsons.Float f)
        | Error _ -> false);
  ]

let suites =
  [
    ("prof.folded", folded_suite);
    ("prof.differential", differential_suite);
    ("prof.determinism", determinism_suite);
    ("obs.jsons_fuzz", fuzz_suite);
  ]
