(* Observability subsystem: metrics registry, span tracing, decision log,
   and the exporters (Chrome trace JSON, Prometheus exposition). *)

open Raw_core
open Test_util
module Metrics = Raw_obs.Metrics
module Trace = Raw_obs.Trace
module Decisions = Raw_obs.Decisions
module Jsons = Raw_obs.Jsons
module Export = Raw_obs.Export
module Io_stats = Raw_storage.Io_stats

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Io_stats shards are domain-local; run counter-sensitive checks in a
   fresh domain so they see an empty table. *)
let in_fresh_domain f = Domain.join (Domain.spawn f)

let observed_config ?(parallelism = 1) () =
  { Config.default with observe = true; parallelism }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_suite =
  [
    Alcotest.test_case "declaration is idempotent by id" `Quick (fun () ->
        let again =
          Metrics.counter ~help:"different help" "scan.rows_scanned"
        in
        Alcotest.(check bool)
          "same handle" true
          (again == Metrics.scan_rows_scanned);
        Alcotest.check_raises "kind change rejected"
          (Invalid_argument
             "Metrics: scan.rows_scanned re-declared with a different kind")
          (fun () -> ignore (Metrics.gauge ~help:"" "scan.rows_scanned")));
    Alcotest.test_case "owner resolves exact, family and derived keys" `Quick
      (fun () ->
        let owner_id k = Option.map Metrics.id (Metrics.owner k) in
        Alcotest.(check (option string))
          "exact" (Some "scan.rows_scanned")
          (owner_id "scan.rows_scanned");
        Alcotest.(check (option string))
          "family" (Some "par.domain")
          (owner_id "par.domain3.seconds");
        Alcotest.(check (option string))
          "bucket" (Some "query.seconds")
          (owner_id (Metrics.bucket_key Metrics.query_seconds 0.5));
        Alcotest.(check (option string))
          "inf bucket" (Some "query.seconds")
          (owner_id (Metrics.inf_bucket_key Metrics.query_seconds));
        Alcotest.(check (option string))
          "sum" (Some "query.seconds")
          (owner_id (Metrics.sum_key Metrics.query_seconds));
        Alcotest.(check (option string))
          "count" (Some "query.seconds")
          (owner_id (Metrics.count_key Metrics.query_seconds));
        Alcotest.(check (option string)) "undeclared" None (owner_id "no.such"));
    Alcotest.test_case "histogram observe fills bucket, sum and count" `Quick
      (fun () ->
        let in_range, over, sum, count =
          in_fresh_domain (fun () ->
              let m = Metrics.query_seconds in
              Metrics.observe m 0.003;
              (* first bucket >= 0.003 is 0.005 *)
              Metrics.observe m 100.0;
              (* beyond the last bound -> +Inf *)
              ( Io_stats.get_float (Metrics.bucket_key m 0.005),
                Io_stats.get_float (Metrics.inf_bucket_key m),
                Io_stats.get_float (Metrics.sum_key m),
                Io_stats.get_float (Metrics.count_key m) ))
        in
        Alcotest.(check (float 0.)) "bucket 0.005" 1.0 in_range;
        Alcotest.(check (float 0.)) "+Inf bucket" 1.0 over;
        Alcotest.(check (float 1e-9)) "sum" 100.003 sum;
        Alcotest.(check (float 0.)) "count" 2.0 count);
    Alcotest.test_case "every key a query bumps is declared" `Quick (fun () ->
        let db = grid_csv_db ~n:60 ~m:4 () in
        let before = Io_stats.snapshot () in
        ignore (Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 3000");
        let undeclared =
          List.filter_map
            (fun (k, v) ->
              let v0 =
                match List.assoc_opt k before with Some x -> x | None -> 0.
              in
              if v -. v0 <> 0. && Metrics.owner k = None then Some k else None)
            (Io_stats.snapshot ())
        in
        Alcotest.(check (list string)) "no undeclared keys" [] undeclared);
  ]

(* ------------------------------------------------------------------ *)
(* Io_stats semantics (PR documents rounding-at-get)                   *)
(* ------------------------------------------------------------------ *)

let io_stats_suite =
  [
    Alcotest.test_case "get rounds to nearest only at read time" `Quick
      (fun () ->
        let g1, f1, g2 =
          in_fresh_domain (fun () ->
              Io_stats.add_float "round.a" 0.3;
              Io_stats.add_float "round.a" 0.4;
              Io_stats.add_float "round.b" 0.4;
              ( Io_stats.get "round.a",
                Io_stats.get_float "round.a",
                Io_stats.get "round.b" ))
        in
        (* 0.7 rounds up; the stored float stays exact *)
        Alcotest.(check int) "0.7 -> 1" 1 g1;
        Alcotest.(check (float 1e-9)) "stored exactly" 0.7 f1;
        Alcotest.(check int) "0.4 -> 0" 0 g2);
  ]

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

let trace_suite =
  [
    Alcotest.test_case "spans nest with exact parent links" `Quick (fun () ->
        let h = Trace.create () in
        Trace.with_handle h (fun () ->
            Trace.with_span "a" (fun () ->
                Trace.with_span "b" (fun () -> ());
                Trace.with_span "b" (fun () -> ());
                Trace.with_span ~args:[ ("k", "v") ] "c" (fun () -> ())));
        let spans = Trace.spans h in
        Alcotest.(check int) "span count" 4 (List.length spans);
        let a = List.find (fun s -> s.Trace.name = "a") spans in
        Alcotest.(check (option int)) "a is a root" None a.Trace.parent;
        List.iter
          (fun (s : Trace.span) ->
            if s.name <> "a" then
              Alcotest.(check (option int))
                (s.name ^ " under a") (Some a.Trace.id) s.parent)
          spans;
        Alcotest.(check (list (pair (option string) string)))
          "edge set deduplicates"
          [ (None, "a"); (Some "a", "b"); (Some "a", "c") ]
          (Trace.edge_set spans));
    Alcotest.test_case "with_span without a handle is transparent" `Quick
      (fun () ->
        Alcotest.(check bool) "disabled" false (Trace.enabled ());
        Trace.add_arg "ignored" "x";
        Alcotest.(check int) "value through" 41 (Trace.with_span "n" (fun () -> 41)));
    Alcotest.test_case "forked worker spans parent under coordinator" `Quick
      (fun () ->
        let h = Trace.create () in
        Trace.with_handle h (fun () ->
            Trace.with_span "scan" (fun () ->
                let fp = Option.get (Trace.fork ()) in
                Domain.join
                  (Domain.spawn (fun () ->
                       Trace.with_fork fp ~tid:3 (fun () ->
                           Trace.with_span "morsel" (fun () -> ()))))));
        let spans = Trace.spans h in
        let scan = List.find (fun s -> s.Trace.name = "scan") spans in
        let morsel = List.find (fun s -> s.Trace.name = "morsel") spans in
        Alcotest.(check int) "worker tid" 3 morsel.Trace.tid;
        Alcotest.(check (option int))
          "parent link crosses domains" (Some scan.Trace.id)
          morsel.Trace.parent);
    Alcotest.test_case "parallel and sequential queries: same tree shape"
      `Quick (fun () ->
        let report p =
          let db = grid_csv_db ~config:(observed_config ~parallelism:p ()) ~n:400 ~m:4 () in
          Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 20000"
        in
        let r2 = report 2 and r4 = report 4 in
        Alcotest.(check bool) "has spans" true (r2.Executor.spans <> []);
        Alcotest.(check (list (pair (option string) string)))
          "edge sets equal"
          (Trace.edge_set r2.Executor.spans)
          (Trace.edge_set r4.Executor.spans);
        (* merged work metrics are exactly equal too: drop the wall-clock
           entries (per-domain seconds, latency histograms, one-per-morsel
           stitch counts), keep the work counters *)
        let work (r : Executor.report) =
          List.filter
            (fun (k, _) ->
              k <> "posmap.segments_merged"
              (* morsel-boundary pages are charged once per touching
                 worker, so the simulated-I/O bill varies with fan-out *)
              && k <> "io.simulated_seconds"
              &&
              match Metrics.owner k with
              | Some m -> Metrics.kind m <> Metrics.Histogram
              | None -> true)
            r.Executor.counters
        in
        Alcotest.(check (list (pair string (float 0.))))
          "work counters equal" (work r2) (work r4));
  ]

(* ------------------------------------------------------------------ *)
(* Decision log                                                        *)
(* ------------------------------------------------------------------ *)

let decisions_suite =
  [
    Alcotest.test_case "record without a handle is a no-op" `Quick (fun () ->
        Alcotest.(check bool) "disabled" false (Decisions.enabled ());
        Decisions.record ~site:"nowhere" ~choice:"x" []);
    Alcotest.test_case "bounded buffer drops and counts" `Quick (fun () ->
        let kept, dropped, counter =
          in_fresh_domain (fun () ->
              let h = Decisions.create ~cap:2 () in
              Decisions.with_handle h (fun () ->
                  for i = 1 to 5 do
                    Decisions.record ~site:"s" ~choice:(string_of_int i) []
                  done);
              ( List.length (Decisions.records h),
                Decisions.dropped h,
                Io_stats.get "obs.decisions_dropped" ))
        in
        Alcotest.(check int) "kept" 2 kept;
        Alcotest.(check int) "dropped" 3 dropped;
        Alcotest.(check int) "counter" 3 counter);
    Alcotest.test_case "default 4096 cap: oldest retained, drops exported"
      `Quick (fun () ->
        let first, last, kept, dropped, text =
          in_fresh_domain (fun () ->
              let h = Decisions.create () in
              Decisions.with_handle h (fun () ->
                  for i = 1 to 5_000 do
                    Decisions.record ~site:"s" ~choice:(string_of_int i) []
                  done);
              let recs = Decisions.records h in
              ( (List.hd recs).Decisions.choice,
                (List.nth recs (List.length recs - 1)).Decisions.choice,
                List.length recs,
                Decisions.dropped h,
                Export.prometheus () ))
        in
        Alcotest.(check int) "kept the cap" 4096 kept;
        Alcotest.(check int) "dropped the overflow" 904 dropped;
        (* retention policy: the FIRST records survive — the planner's
           decisions land early and must not be evicted by a chatty tail *)
        Alcotest.(check string) "oldest retained" "1" first;
        Alcotest.(check string) "newest kept is the 4096th" "4096" last;
        Alcotest.(check bool) "drop counter exported" true
          (contains text "raw_obs_decisions_dropped_total 904"));
    Alcotest.test_case "template cache: compile then hit" `Quick (fun () ->
        let t = Template_cache.create ~compile_seconds:0.01 in
        let h = Decisions.create () in
        Decisions.with_handle h (fun () ->
            ignore (Template_cache.get t ~kind:"k" ~key:"a" (fun () -> ()));
            ignore (Template_cache.get t ~kind:"k" ~key:"a" (fun () -> ())));
        match Decisions.by_site (Decisions.records h) "template_cache" with
        | [ first; second ] ->
          Alcotest.(check string) "first compiles" "compile" first.Decisions.choice;
          Alcotest.(check string) "second hits" "hit" second.Decisions.choice;
          Alcotest.(check bool)
            "key recorded" true
            (List.assoc_opt "key" first.Decisions.inputs = Some "a")
        | l -> Alcotest.failf "expected 2 decisions, got %d" (List.length l));
    Alcotest.test_case "repeat query reuses: no recompile, pool reuse logged"
      `Quick (fun () ->
        let db = grid_csv_db ~config:(observed_config ()) () in
        let q = "SELECT MAX(col1) FROM t WHERE col0 < 2000" in
        let first = Raw_db.query db q in
        let second = Raw_db.query db q in
        let choices (r : Executor.report) site =
          List.map
            (fun (d : Decisions.record) -> d.choice)
            (Decisions.by_site r.Executor.decisions site)
        in
        Alcotest.(check bool)
          "first compiles" true
          (List.mem "compile" (choices first "template_cache"));
        Alcotest.(check bool)
          "second does not recompile" false
          (List.mem "compile" (choices second "template_cache"));
        Alcotest.(check bool)
          "second reuses pooled shreds" true
          (List.mem "reuse" (choices second "shred_pool")));
    Alcotest.test_case "adaptive planner decision carries cost inputs" `Quick
      (fun () ->
        let db = grid_csv_db ~config:(observed_config ()) ~n:100 ~m:6 () in
        let options = { Planner.default with shreds = Planner.Adaptive } in
        let r =
          Raw_db.query ~options db "SELECT MAX(col1) FROM t WHERE col0 < 5000"
        in
        match Decisions.by_site r.Executor.decisions "planner.adaptive" with
        | [] -> Alcotest.fail "no planner.adaptive decision recorded"
        | d :: _ ->
          Alcotest.(check bool)
            "resolved to a concrete strategy" true
            (List.mem d.Decisions.choice [ "full"; "shreds"; "multishreds" ]);
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (key ^ " input present") true
                (List.mem_assoc key d.Decisions.inputs))
            [ "table"; "selectivity"; "cost_full"; "cost_shreds";
              "cost_multishreds" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* The repo already carries a reference JSON parser (Jsonl); use it to
   validate the hand-rolled writer end-to-end. *)
let parse_json = Raw_formats.Jsonl.parse

let export_suite =
  [
    Alcotest.test_case "chrome trace JSON parses and mirrors the spans" `Quick
      (fun () ->
        let db = grid_csv_db ~config:(observed_config ()) () in
        let r = Raw_db.query db "SELECT MAX(col1) FROM t WHERE col0 < 2000" in
        let spans = r.Executor.spans in
        Alcotest.(check bool) "spans recorded" true (spans <> []);
        match parse_json (Export.chrome_trace spans) with
        | Raw_formats.Jsonl.Object top ->
          (match List.assoc "traceEvents" top with
           | Raw_formats.Jsonl.Array events ->
             Alcotest.(check int)
               "one event per span" (List.length spans) (List.length events);
             List.iter
               (fun ev ->
                 match ev with
                 | Raw_formats.Jsonl.Object fields ->
                   List.iter
                     (fun k ->
                       Alcotest.(check bool)
                         ("event has " ^ k) true (List.mem_assoc k fields))
                     [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ];
                   Alcotest.(check bool)
                     "complete event" true
                     (List.assoc "ph" fields = Raw_formats.Jsonl.String "X")
                 | _ -> Alcotest.fail "event is not an object")
               events
           | _ -> Alcotest.fail "traceEvents is not an array")
        | _ -> Alcotest.fail "trace is not a JSON object");
    Alcotest.test_case "json escaping roundtrips through the parser" `Quick
      (fun () ->
        let s = "quote\" slash\\ nl\n tab\t ctrl\x01 done" in
        match parse_json (Jsons.to_string (Jsons.Obj [ ("k", Jsons.Str s) ])) with
        | Raw_formats.Jsonl.Object [ ("k", Raw_formats.Jsonl.String got) ] ->
          Alcotest.(check string) "string survives" s got
        | _ -> Alcotest.fail "bad shape");
    Alcotest.test_case "prometheus exposition: types, histograms, untyped"
      `Quick (fun () ->
        let text =
          in_fresh_domain (fun () ->
              Metrics.add Metrics.scan_rows_scanned 5;
              Metrics.set Metrics.gov_budget_capacity_bytes 1024.;
              Metrics.observe Metrics.query_seconds 0.003;
              Io_stats.incr "custom.key";
              Export.prometheus ())
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains text needle))
          [
            (* counters carry the conventional _total suffix *)
            "# TYPE raw_scan_rows_scanned_total counter";
            "raw_scan_rows_scanned_total 5";
            "# TYPE raw_gov_budget_capacity_bytes gauge";
            "raw_gov_budget_capacity_bytes 1024";
            "# TYPE raw_query_seconds histogram";
            "raw_query_seconds_bucket{le=\"0.005\"} 1";
            (* cumulative: later buckets include the 0.005 observation *)
            "raw_query_seconds_bucket{le=\"10\"} 1";
            "raw_query_seconds_bucket{le=\"+Inf\"} 1";
            "raw_query_seconds_sum 0.003";
            "raw_query_seconds_count 1";
            "# TYPE raw_custom_key untyped";
            "raw_custom_key 1";
          ]);
    Alcotest.test_case "build info gauge leads every exposition" `Quick
      (fun () ->
        let text = Export.prometheus () in
        let lead = "# HELP rawq_build_info" in
        Alcotest.(check string)
          "exposition starts with the build info family" lead
          (String.sub text 0 (String.length lead));
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains text needle))
          [
            "# TYPE rawq_build_info gauge";
            Printf.sprintf "rawq_build_info{version=\"%s\",ocaml=\"%s\"} 1"
              Export.build_version Sys.ocaml_version;
          ];
        (* the server's snapshot-based exposition carries it too *)
        Alcotest.(check bool) "snapshot exposition carries it" true
          (contains
             (Export.prometheus_of_snapshot [ ("custom.key", 1.) ])
             "rawq_build_info{"));
    Alcotest.test_case "prometheus escapes hostile help and label text"
      `Quick (fun () ->
        let text =
          in_fresh_domain (fun () ->
              let m =
                Metrics.counter "test.hostile"
                  ~help:"line1\nline2 back\\slash \"quoted\""
              in
              Metrics.incr m;
              Export.prometheus ())
        in
        (* the newline and backslash must be escaped so HELP stays one
           line; quotes are legal in help text and pass through *)
        Alcotest.(check bool) "single escaped HELP line" true
          (List.exists
             (fun l -> contains l "line1\\nline2 back\\\\slash \"quoted\"")
             (String.split_on_char '\n' text));
        Alcotest.(check string) "label value escaping"
          "a\\\"b\\\\c\\nd"
          (Export.escape_label_value "a\"b\\c\nd"));
    Alcotest.test_case "histogram quantiles: empty, single-bucket, \
                        overflow-only" `Quick (fun () ->
        in_fresh_domain (fun () ->
            let h =
              Metrics.histogram "test.quant" ~buckets:[ 0.1; 1.0 ]
                ~help:"quantile edge cases"
            in
            let q v = Metrics.quantile h ~q:v in
            (* empty: no observations -> None, never NaN *)
            Alcotest.(check (option (float 1e-9))) "empty" None (q 0.5);
            (* out-of-range q -> None *)
            Metrics.observe h 0.05;
            Alcotest.(check (option (float 1e-9))) "q > 1" None (q 1.5);
            Alcotest.(check (option (float 1e-9))) "q NaN" None (q Float.nan);
            (* single populated bucket: interpolated within its bounds *)
            (match q 0.5 with
            | Some v ->
              Alcotest.(check bool) "inside first bucket" true
                (v > 0. && v <= 0.1)
            | None -> Alcotest.fail "expected an estimate");
            (* overflow-only: all mass beyond the last finite bound
               clamps to that bound rather than inventing +Inf *)
            let h2 =
              Metrics.histogram "test.quant2" ~buckets:[ 0.1; 1.0 ]
                ~help:"overflow only"
            in
            Metrics.observe h2 50.;
            Alcotest.(check (option (float 1e-9)))
              "overflow clamps to largest finite bound" (Some 1.0)
              (Metrics.quantile h2 ~q:0.99)));
    Alcotest.test_case "pp_span_tree prints an indented tree" `Quick (fun () ->
        let h = Trace.create () in
        Trace.with_handle h (fun () ->
            Trace.with_span "query" (fun () ->
                Trace.with_span "plan" (fun () -> ())));
        let text = Format.asprintf "%a" Export.pp_span_tree (Trace.spans h) in
        Alcotest.(check bool) "root first" true
          (String.length text > 5 && String.sub text 0 5 = "query");
        Alcotest.(check bool) "child indented" true (contains text "\n  plan"));
  ]

(* ------------------------------------------------------------------ *)
(* Windowed metrics (PR 9)                                             *)
(* ------------------------------------------------------------------ *)

module Window = Raw_obs.Window

(* A snapshot delta is itself a histogram snapshot; build deltas by hand
   to pin quantile_of_snapshot's documented edge cases on them. *)
let delta_quantile_suite =
  let h =
    Metrics.histogram "test.window.delta" ~buckets:[ 0.1; 1.0 ]
      ~help:"delta-snapshot quantile edge cases"
  in
  [
    Alcotest.test_case "empty delta (B = A) yields None" `Quick (fun () ->
        let d =
          [
            (Metrics.bucket_key h 0.1, 0.);
            (Metrics.bucket_key h 1.0, 0.);
            (Metrics.inf_bucket_key h, 0.);
            (Metrics.sum_key h, 0.);
            (Metrics.count_key h, 0.);
          ]
        in
        Alcotest.(check (option (float 1e-9)))
          "no observations in the window" None
          (Metrics.quantile_of_snapshot d h ~q:0.99);
        Alcotest.(check (option (float 1e-9)))
          "missing keys read as 0" None
          (Metrics.quantile_of_snapshot [] h ~q:0.5));
    Alcotest.test_case "single-bucket delta interpolates inside the bucket"
      `Quick (fun () ->
        let d =
          [
            (Metrics.bucket_key h 0.1, 4.);
            (Metrics.sum_key h, 0.2);
            (Metrics.count_key h, 4.);
          ]
        in
        match Metrics.quantile_of_snapshot d h ~q:0.5 with
        | Some v ->
          Alcotest.(check bool) "inside (0, 0.1]" true (v > 0. && v <= 0.1)
        | None -> Alcotest.fail "expected an estimate");
    Alcotest.test_case "overflow-only delta clamps to largest finite bound"
      `Quick (fun () ->
        let d =
          [ (Metrics.inf_bucket_key h, 3.); (Metrics.count_key h, 3.) ]
        in
        Alcotest.(check (option (float 1e-9)))
          "clamped" (Some 1.0)
          (Metrics.quantile_of_snapshot d h ~q:0.99));
  ]

let window_suite =
  (* snapshots are plain assoc lists; stamp them explicitly so the tests
     are deterministic *)
  let snap v = [ ("k", v) ] in
  [
    Alcotest.test_case "delta needs two retained snapshots" `Quick (fun () ->
        let w = Window.create ~interval:1.0 () in
        Alcotest.(check (option (pair (float 0.) (list (pair string (float 0.))))))
          "empty" None
          (Window.delta w ~window:10.);
        Alcotest.(check bool) "first retained" true
          (Window.observe w ~now:100. (snap 1.));
        Alcotest.(check int) "size 1" 1 (Window.size w);
        Alcotest.(check (option (pair (float 0.) (list (pair string (float 0.))))))
          "one is not enough" None
          (Window.delta w ~window:10.));
    Alcotest.test_case "observe dedups under the tick interval" `Quick
      (fun () ->
        let w = Window.create ~interval:1.0 () in
        Alcotest.(check bool) "t=100 kept" true
          (Window.observe w ~now:100. (snap 0.));
        Alcotest.(check bool) "t=100.5 dropped" false
          (Window.observe w ~now:100.5 (snap 1.));
        Alcotest.(check bool) "t=101.2 kept" true
          (Window.observe w ~now:101.2 (snap 2.));
        Alcotest.(check int) "two retained" 2 (Window.size w);
        Alcotest.(check (float 1e-9)) "coverage" 1.2 (Window.coverage w));
    Alcotest.test_case "baseline is the smallest fully-covering span" `Quick
      (fun () ->
        let w = Window.create ~interval:1.0 ~capacity:8 () in
        List.iter
          (fun (t, v) -> ignore (Window.observe w ~now:t (snap v)))
          [ (0., 0.); (10., 1.); (20., 2.); (30., 3.) ];
        (* window 15 anchored at t=30 wants a baseline at ts <= 15: t=10 *)
        (match Window.delta w ~window:15. with
        | Some (elapsed, d) ->
          Alcotest.(check (float 1e-9)) "spans 20 s" 20. elapsed;
          Alcotest.(check (float 1e-9)) "delta 2" 2. (List.assoc "k" d)
        | None -> Alcotest.fail "expected a delta");
        (* a window longer than history falls back to the oldest entry *)
        (match Window.delta w ~window:1000. with
        | Some (elapsed, d) ->
          Alcotest.(check (float 1e-9)) "whole history" 30. elapsed;
          Alcotest.(check (float 1e-9)) "delta 3" 3. (List.assoc "k" d)
        | None -> Alcotest.fail "expected a delta");
        Alcotest.(check (option (float 1e-9)))
          "rate = delta / elapsed" (Some 0.1)
          (Window.rate w ~window:15. "k");
        Alcotest.(check (option (float 1e-9)))
          "absent key rates as 0" (Some 0.)
          (Window.rate w ~window:15. "no.such"));
    Alcotest.test_case "negative deltas clamp to zero" `Quick (fun () ->
        let w = Window.create ~interval:1.0 () in
        ignore (Window.observe w ~now:0. (snap 5.));
        ignore (Window.observe w ~now:10. (snap 3.));
        match Window.delta w ~window:10. with
        | Some (_, d) ->
          Alcotest.(check (float 0.)) "clamped" 0. (List.assoc "k" d)
        | None -> Alcotest.fail "expected a delta");
    Alcotest.test_case "capacity bounds the ring, evicting oldest" `Quick
      (fun () ->
        let w = Window.create ~interval:1.0 ~capacity:3 () in
        for i = 0 to 9 do
          ignore (Window.observe w ~now:(float_of_int i) (snap (float_of_int i)))
        done;
        Alcotest.(check int) "capped" 3 (Window.size w);
        match Window.delta w ~window:1000. with
        | Some (elapsed, d) ->
          (* entries 7, 8, 9 survive *)
          Alcotest.(check (float 1e-9)) "oldest is 7" 2. elapsed;
          Alcotest.(check (float 1e-9)) "delta from 7" 2. (List.assoc "k" d)
        | None -> Alcotest.fail "expected a delta");
    Alcotest.test_case "window quantile matches an exact oracle" `Quick
      (fun () ->
        (* Observe phase A, snapshot; observe phase B, snapshot; the
           window delta must reproduce exactly the quantile of a twin
           histogram that saw only phase B — identical bucket counts,
           identical float arithmetic. *)
        let got, want =
          in_fresh_domain (fun () ->
              let buckets = [ 0.001; 0.01; 0.1; 1.0 ] in
              let m =
                Metrics.histogram "test.window.oracle" ~buckets
                  ~help:"windowed phase"
              in
              let oracle =
                Metrics.histogram "test.window.oracle.twin" ~buckets
                  ~help:"phase B only"
              in
              let phase_a = [ 0.0005; 0.0005; 0.05; 2.0 ] in
              let phase_b = [ 0.002; 0.004; 0.03; 0.03; 0.7; 5.0 ] in
              List.iter (Metrics.observe m) phase_a;
              let sa = Io_stats.snapshot () in
              List.iter (Metrics.observe m) phase_b;
              let sb = Io_stats.snapshot () in
              List.iter (Metrics.observe oracle) phase_b;
              let w = Window.create ~interval:1.0 () in
              ignore (Window.observe w ~now:0. sa);
              ignore (Window.observe w ~now:10. sb);
              let qs = [ 0.5; 0.9; 0.95; 0.99 ] in
              ( List.map (fun q -> Window.quantile w ~window:10. m ~q) qs,
                List.map (fun q -> Metrics.quantile oracle ~q) qs ))
        in
        (* exact equality: same bucket counts must mean same floats *)
        Alcotest.(check (list (option (float 0.))))
          "window delta = phase-B oracle" want got);
  ]

let suites =
  [
    ("obs.registry", registry_suite);
    ("obs.io_stats", io_stats_suite);
    ("obs.trace", trace_suite);
    ("obs.decisions", decisions_suite);
    ("obs.export", export_suite);
    ("obs.delta_quantile", delta_quantile_suite);
    ("obs.window", window_suite);
  ]
