(* Property-based tests (qcheck) on core data structures and invariants. *)

open Raw_vector
open Test_util

module Gen = QCheck2.Gen

(* ---------------- parsers ---------------- *)

let prop_parse_int =
  qtest "csv.parse_int inverts string_of_int" Gen.int (fun i ->
      let s = string_of_int i in
      Raw_formats.Csv.parse_int (Bytes.of_string s) 0 (String.length s) = i)

let prop_parse_float =
  qtest "csv.parse_float matches float_of_string on %.6f"
    (Gen.float_bound_inclusive 1e12)
    (fun x ->
      let s = Printf.sprintf "%.6f" x in
      let got = Raw_formats.Csv.parse_float (Bytes.of_string s) 0 (String.length s) in
      Float.abs (got -. float_of_string s) <= 1e-9 *. Float.max 1.0 (Float.abs x))

(* ---------------- selection vectors ---------------- *)

let mask_gen = Gen.array_size (Gen.int_range 0 200) Gen.bool

let prop_sel_partition =
  qtest "sel + complement partition the index space" mask_gen (fun mask ->
      let n = Array.length mask in
      let s = Sel.of_bool_mask mask in
      let c = Sel.complement s n in
      Sel.length s + Sel.length c = n
      && Array.for_all (fun i -> mask.(i)) (Sel.to_array s)
      && Array.for_all (fun i -> not mask.(i)) (Sel.to_array c))

let prop_sel_compose =
  qtest "sel compose = indexed lookup" mask_gen (fun mask ->
      let inner = Sel.of_bool_mask mask in
      let k = Sel.length inner in
      if k = 0 then true
      else begin
        let outer = Sel.of_array (Array.init ((k + 1) / 2) (fun i -> i * 2)) in
        let composed = Sel.compose outer inner in
        Array.for_all
          (fun j -> Sel.get composed j = Sel.get inner (Sel.get outer j))
          (Array.init (Sel.length composed) Fun.id)
      end)

(* ---------------- LRU ---------------- *)

let lru_ops_gen =
  Gen.list_size (Gen.int_range 0 300)
    (Gen.pair (Gen.int_range 0 20) (Gen.int_range 0 2))

let prop_lru_bounded =
  qtest "lru never exceeds capacity and serves last write" lru_ops_gen (fun ops ->
      let l = Raw_storage.Lru.create ~capacity:8 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, op) ->
          (match op with
           | 0 ->
             ignore (Raw_storage.Lru.add l k k);
             Hashtbl.replace model k k
           | 1 -> ignore (Raw_storage.Lru.find l k)
           | _ ->
             Raw_storage.Lru.remove l k;
             Hashtbl.remove model k);
          Raw_storage.Lru.length l <= 8
          &&
          (* anything in the LRU must carry the modelled value *)
          match Raw_storage.Lru.peek l k with
          | None -> true
          | Some v -> Hashtbl.find_opt model k = Some v)
        ops)

(* ---------------- column gather/scatter ---------------- *)

let prop_gather_scatter =
  qtest "scatter then gather is identity"
    (Gen.array_size (Gen.int_range 1 100) Gen.int)
    (fun values ->
      let n = Array.length values in
      let packed = Column.of_int_array values in
      let idx = Array.init n (fun i -> i) in
      (* scatter into a sparse destination twice as large, at even slots *)
      let dst =
        Column.invalidate_all (Column.of_int_array (Array.make (2 * n) 0))
      in
      let even = Array.map (fun i -> 2 * i) idx in
      Column.scatter dst even packed;
      Column.equal (Column.gather dst even) packed)

(* ---------------- kernels vs naive model ---------------- *)

let cmp_gen =
  Gen.oneofl
    [ Kernels.Lt; Kernels.Le; Kernels.Gt; Kernels.Ge; Kernels.Eq; Kernels.Ne ]

let cmp_fn (op : Kernels.cmp) a b =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let prop_filter_const =
  qtest "filter_const agrees with list filter"
    (Gen.triple cmp_gen (Gen.array_size (Gen.int_range 0 200) (Gen.int_range (-50) 50))
       (Gen.int_range (-50) 50))
    (fun (op, values, x) ->
      let col = Column.of_int_array values in
      let got = Sel.to_array (Kernels.filter_const op col (Int x) None) in
      let want =
        Array.of_list
          (List.filteri (fun _ _ -> true)
             (List.filter_map
                (fun i -> if cmp_fn op values.(i) x then Some i else None)
                (List.init (Array.length values) Fun.id)))
      in
      got = want)

let prop_aggregate =
  qtest "aggregates agree with folds"
    (Gen.array_size (Gen.int_range 1 200) (Gen.int_range (-1000) 1000))
    (fun values ->
      let col = Column.of_int_array values in
      let l = Array.to_list values in
      Kernels.aggregate Kernels.Max col None = Int (List.fold_left max min_int l)
      && Kernels.aggregate Kernels.Min col None = Int (List.fold_left min max_int l)
      && Kernels.aggregate Kernels.Sum col None = Int (List.fold_left ( + ) 0 l)
      && Kernels.aggregate Kernels.Count col None = Int (List.length l))

(* ---------------- hash join vs nested loop ---------------- *)

let prop_hash_join =
  qtest "hash_join equals nested-loop join" ~count:50
    (Gen.pair
       (Gen.array_size (Gen.int_range 0 40) (Gen.int_range 0 10))
       (Gen.array_size (Gen.int_range 0 40) (Gen.int_range 0 10)))
    (fun (probe, build) ->
      let open Raw_engine in
      let mk a = Operator.of_chunks [ Chunk.of_columns [ Column.of_int_array a ] ] in
      let op =
        Operator.hash_join ~build:(mk build) ~probe:(mk probe)
          ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
      in
      let got =
        List.init (Chunk.n_rows (Operator.to_chunk op)) Fun.id |> List.length
      in
      (* recompute, since to_chunk drains: rebuild operators *)
      let op2 =
        Operator.hash_join ~build:(mk build) ~probe:(mk probe)
          ~build_key:(Expr.col 0) ~probe_key:(Expr.col 0)
      in
      let rows = rows_of_chunk (Operator.to_chunk op2) in
      let naive =
        List.concat_map
          (fun p ->
            List.filter_map
              (fun b -> if p = b then Some [ Value.Int p; Value.Int b ] else None)
              (Array.to_list build))
          (Array.to_list probe)
        |> List.sort Stdlib.compare
      in
      got = List.length naive && rows = naive)

(* ---------------- scan kernels vs naive CSV model ---------------- *)

let small_grid_gen =
  Gen.pair (Gen.int_range 1 30) (Gen.int_range 1 8)

let prop_scan_modes_agree =
  qtest "interpreted and JIT CSV scans agree with a naive reader" ~count:40
    small_grid_gen
    (fun (n, m) ->
      let rows = List.init n (fun r -> List.init m (fun c -> (r * 31) + (c * 7))) in
      let path = write_csv_rows rows in
      let file = Raw_storage.Mmap_file.open_file path in
      let schema = Schema.of_pairs (int_cols m) in
      let needed = List.filteri (fun i _ -> i mod 2 = 0) (List.init m Fun.id) in
      let run mode =
        fst
          (Raw_core.Scan_csv.seq_scan ~mode ~file ~sep:',' ~schema ~needed
             ~tracked:[] ())
      in
      let interp = run Raw_core.Scan_csv.Interpreted in
      let jit = run Raw_core.Scan_csv.Jit in
      let naive =
        List.map
          (fun c -> Column.of_int_array (Array.of_list (List.map (fun row -> List.nth row c) rows)))
          needed
      in
      List.for_all2
        (fun c k -> Column.equal c interp.(k) && Column.equal c jit.(k))
        naive
        (List.init (List.length needed) Fun.id))

let prop_fetch_matches_scan =
  qtest "posmap fetch agrees with full scan" ~count:40 small_grid_gen
    (fun (n, m) ->
      let rows = List.init n (fun r -> List.init m (fun c -> (r * 13) + c)) in
      let path = write_csv_rows rows in
      let file = Raw_storage.Mmap_file.open_file path in
      let schema = Schema.of_pairs (int_cols m) in
      let tracked = Raw_formats.Posmap.every_k ~k:3 ~n_cols:m in
      let all = List.init m Fun.id in
      let full, pm =
        Raw_core.Scan_csv.seq_scan ~mode:Raw_core.Scan_csv.Jit ~file ~sep:','
          ~schema ~needed:all ~tracked ()
      in
      let pm = Option.get pm in
      let rowids = Array.of_list (List.filteri (fun i _ -> i mod 2 = 1) (List.init n Fun.id)) in
      if Array.length rowids = 0 then true
      else
        List.for_all
          (fun mode ->
            let cols = [ m - 1 ] in
            let fetched =
              Raw_core.Scan_csv.fetch ~mode ~file ~sep:',' ~schema ~posmap:pm
                ~cols ~rowids ()
            in
            Column.equal (Column.gather full.(m - 1) rowids) fetched.(0))
          [ Raw_core.Scan_csv.Interpreted; Raw_core.Scan_csv.Jit ])

(* ---------------- FWB roundtrip ---------------- *)

let prop_fwb_roundtrip =
  qtest "fwb write/read roundtrip" ~count:40
    (Gen.list_size (Gen.int_range 1 50) (Gen.pair Gen.int Gen.float))
    (fun rows ->
      let layout = Raw_formats.Fwb.layout [| Dtype.Int; Dtype.Float |] in
      let path = fresh_path ".fwb" in
      Raw_formats.Fwb.write_file ~path layout
        (List.to_seq (List.map (fun (i, f) -> [| Value.Int i; Value.Float f |]) rows));
      let file = Raw_storage.Mmap_file.open_file path in
      List.for_all
        (fun (row, (i, f)) ->
          Raw_formats.Fwb.read_int file (Raw_formats.Fwb.offset_of layout ~row ~field:0) = i
          &&
          let g =
            Raw_formats.Fwb.read_float file
              (Raw_formats.Fwb.offset_of layout ~row ~field:1)
          in
          (Float.is_nan f && Float.is_nan g) || g = f)
        (List.mapi (fun row x -> (row, x)) rows))

(* ---------------- HEP roundtrip ---------------- *)

let particle_gen =
  Gen.map
    (fun ((pt, eta), phi) -> { Raw_formats.Hep.pt; eta; phi })
    (Gen.pair (Gen.pair (Gen.float_bound_inclusive 100.) (Gen.float_bound_inclusive 2.5))
       (Gen.float_bound_inclusive 3.14))

let event_gen i =
  Gen.map
    (fun (((run, mu), el), jet) ->
      {
        Raw_formats.Hep.event_id = i;
        run_number = run;
        aux = Array.map (fun (p : Raw_formats.Hep.particle) -> p.phi) mu;
        muons = mu;
        electrons = el;
        jets = jet;
      })
    (Gen.pair
       (Gen.pair
          (Gen.pair (Gen.int_range 0 100) (Gen.array_size (Gen.int_range 0 5) particle_gen))
          (Gen.array_size (Gen.int_range 0 5) particle_gen))
       (Gen.array_size (Gen.int_range 0 5) particle_gen))

let events_gen =
  Gen.sized (fun n ->
      let n = min (max n 1) 20 in
      Gen.flatten_l (List.init n event_gen))

let prop_hep_roundtrip =
  qtest "hep write/read roundtrip" ~count:30 events_gen (fun events ->
      let path = fresh_path ".hep" in
      Raw_formats.Hep.write_file ~path (List.to_seq events);
      let r = Raw_formats.Hep.Reader.open_file path in
      Raw_formats.Hep.Reader.n_events r = List.length events
      && List.for_all
           (fun (i, (e : Raw_formats.Hep.event)) ->
             let got = Raw_formats.Hep.Reader.get_entry r i in
             got = e)
           (List.mapi (fun i e -> (i, e)) events))

(* ---------------- group_by vs naive model ---------------- *)

let prop_group_by =
  qtest "group_by sums agree with a naive fold" ~count:60
    (Gen.list_size (Gen.int_range 0 150)
       (Gen.pair (Gen.int_range 0 8) (Gen.int_range (-100) 100)))
    (fun pairs ->
      let open Raw_engine in
      let keys = Column.of_int_array (Array.of_list (List.map fst pairs)) in
      let vals = Column.of_int_array (Array.of_list (List.map snd pairs)) in
      let op =
        Operator.group_by ~keys:[ Expr.col 0 ]
          ~aggs:[ (Kernels.Sum, Expr.col 1); (Kernels.Count, Expr.col 1) ]
          (Operator.of_chunks
             (if pairs = [] then []
              else [ Chunk.of_columns [ keys; vals ] ]))
      in
      let got = rows_of_chunk (Operator.to_chunk op) in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (k, v) ->
          let s, c = Option.value (Hashtbl.find_opt model k) ~default:(0, 0) in
          Hashtbl.replace model k (s + v, c + 1))
        pairs;
      let want =
        Hashtbl.fold
          (fun k (s, c) acc -> [ Value.Int k; Value.Int s; Value.Int c ] :: acc)
          model []
        |> List.sort Stdlib.compare
      in
      got = want)

(* ---------------- column concat ---------------- *)

let prop_concat =
  qtest "Column.concat equals element-wise append"
    (Gen.pair (Gen.array_size (Gen.int_range 0 50) Gen.int)
       (Gen.array_size (Gen.int_range 1 50) Gen.int))
    (fun (a, b) ->
      let ca = Column.of_int_array a and cb = Column.of_int_array b in
      Column.equal
        (Column.concat (if Array.length a = 0 then [ cb ] else [ ca; cb ]))
        (Column.of_int_array (if Array.length a = 0 then b else Array.append a b)))

(* ---------------- jsonl extraction vs reference parser ---------------- *)

let json_scalar_gen =
  Gen.oneof
    [
      Gen.map (fun i -> Value.Int i) (Gen.int_range (-1000000) 1000000);
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      Gen.map (fun s -> Value.String s) (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 12));
    ]

let prop_jsonl_extract =
  qtest "jsonl extraction agrees with the reference parser" ~count:60
    (Gen.list_size (Gen.int_range 1 6)
       (Gen.pair (Gen.int_range 0 9) json_scalar_gen))
    (fun fields ->
      (* unique single-letter field names a..j *)
      let fields =
        List.sort_uniq (fun (a, _) (b, _) -> Stdlib.compare a b) fields
        |> List.map (fun (i, v) -> (String.make 1 (Char.chr (97 + i)), v))
      in
      let path = fresh_path ".jsonl" in
      Raw_formats.Jsonl.write_file ~path (List.to_seq [ fields ]);
      let line =
        String.trim (In_channel.with_open_bin path In_channel.input_all)
      in
      match Raw_formats.Jsonl.parse line with
      | Raw_formats.Jsonl.Object parsed ->
        List.for_all
          (fun (name, v) ->
            match (List.assoc_opt name parsed, (v : Value.t)) with
            | Some (Raw_formats.Jsonl.Number x), Value.Int i ->
              x = float_of_int i
            | Some (Raw_formats.Jsonl.Bool b), Value.Bool b' -> b = b'
            | Some (Raw_formats.Jsonl.String s), Value.String s' -> s = s'
            | _ -> false)
          fields
      | _ -> false)

(* ---------------- btree range vs naive filter ---------------- *)

let prop_btree =
  qtest "btree range equals naive filter" ~count:60
    (Gen.pair
       (Gen.list_size (Gen.int_range 0 300) (Gen.int_range 0 500))
       (Gen.pair (Gen.int_range 0 500) (Gen.int_range 0 500)))
    (fun (keys, (a, b)) ->
      let lo = min a b and hi = max a b in
      let entries =
        List.sort Stdlib.compare keys
        |> List.mapi (fun i k -> (k, i))
        |> Array.of_list
      in
      let bytes, meta = Raw_formats.Btree.serialize ~fanout:7 entries in
      let file = Raw_storage.Mmap_file.of_bytes ~name:"t" bytes in
      let got =
        Array.to_list (Raw_formats.Btree.range file ~base:0 meta ~lo ~hi)
      in
      let want =
        Array.to_list entries
        |> List.filter (fun (k, _) -> k >= lo && k <= hi)
        |> List.map snd
      in
      got = want)

(* ---------------- CSV edge corpora ---------------- *)

(* Line-ending / final-field corner cases through both scan modes: CRLF
   endings, a missing trailing newline, and an empty final field. *)
let prop_csv_edges =
  qtest "csv edge corpora agree across scan modes" ~count:60
    (Gen.triple (Gen.int_range 1 20) Gen.bool
       (Gen.oneofl [ `Trail; `No_trail; `Empty_last ]))
    (fun (n, crlf, ending) ->
      let ints = List.init n (fun r -> (r * 31) - 7) in
      let strs =
        List.init n (fun r ->
            match ending with
            | `Empty_last -> ""
            | _ -> Printf.sprintf "s%d" r)
      in
      let eol = if crlf then "\r\n" else "\n" in
      let body =
        List.map2 (fun i s -> string_of_int i ^ "," ^ s) ints strs
        |> String.concat eol
      in
      let text = if ending = `No_trail then body else body ^ eol in
      let path = fresh_path ".csv" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      let file = Raw_storage.Mmap_file.open_file path in
      let schema =
        Schema.of_pairs [ ("a", Dtype.Int); ("b", Dtype.String) ]
      in
      let run mode =
        fst
          (Raw_core.Scan_csv.seq_scan ~mode ~file ~sep:',' ~schema
             ~needed:[ 0; 1 ] ~tracked:[] ())
      in
      let interp = run Raw_core.Scan_csv.Interpreted in
      let jit = run Raw_core.Scan_csv.Jit in
      let want_a = Column.of_int_array (Array.of_list ints) in
      let want_b =
        Column.of_values Dtype.String (List.map (fun s -> Value.String s) strs)
      in
      Column.equal interp.(0) want_a
      && Column.equal interp.(1) want_b
      && Column.equal jit.(0) want_a
      && Column.equal jit.(1) want_b)

(* ---------------- parallel scans vs sequential ---------------- *)

(* Run [f], returning its result plus the Io_stats work-counter delta it
   caused (timing entries excluded: the per-domain wall-clock breakdown and
   latency histograms — morsel.seconds has one observation per morsel and
   wall-clock-dependent buckets — are timings, not work, and legitimately
   vary with parallelism). *)
let timing_key k =
  String.starts_with ~prefix:"par.domain" k
  (* one segment per morsel: the stitch count is the morsel count *)
  || k = "posmap.segments_merged"
  ||
  match Raw_obs.Metrics.owner k with
  | Some m -> Raw_obs.Metrics.kind m = Raw_obs.Metrics.Histogram
  | None -> false

let delta_counters f =
  let before = Raw_storage.Io_stats.snapshot () in
  let r = f () in
  let after = Raw_storage.Io_stats.snapshot () in
  let d =
    List.filter_map
      (fun (k, v) ->
        if timing_key k then None
        else
          let v0 =
            match List.assoc_opt k before with Some x -> x | None -> 0.
          in
          if v -. v0 <> 0. then Some (k, v -. v0) else None)
      after
  in
  (r, d)

let posmap_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    Raw_formats.Posmap.tracked a = Raw_formats.Posmap.tracked b
    && Raw_formats.Posmap.n_rows a = Raw_formats.Posmap.n_rows b
    && Array.for_all
         (fun c ->
           Raw_formats.Posmap.positions a c = Raw_formats.Posmap.positions b c
           && Raw_formats.Posmap.lengths a c = Raw_formats.Posmap.lengths b c)
         (Raw_formats.Posmap.tracked a)
  | _ -> false

let mode_gen = Gen.oneofl [ Raw_core.Scan_csv.Interpreted; Raw_core.Scan_csv.Jit ]

let prop_parallel_csv =
  qtest "parallel CSV scan is bit-identical to sequential" ~count:10
    (Gen.pair small_grid_gen mode_gen)
    (fun ((n, m), mode) ->
      let rows = List.init n (fun r -> List.init m (fun c -> (r * 17) + c)) in
      let path = write_csv_rows rows in
      let schema = Schema.of_pairs (int_cols m) in
      let needed = List.init m Fun.id in
      let tracked = Raw_formats.Posmap.every_k ~k:2 ~n_cols:m in
      let run parallelism =
        let file = Raw_storage.Mmap_file.open_file path in
        delta_counters (fun () ->
            Raw_core.Scan_csv.par_scan ~mode ~parallelism ~file ~sep:','
              ~schema ~needed ~tracked ())
      in
      let (c1, p1), d1 = run 1 in
      let (c4, p4), d4 = run 4 in
      Array.for_all2 Column.equal c1 c4 && posmap_equal p1 p4 && d1 = d4)

let prop_parallel_fwb =
  qtest "parallel FWB scan is bit-identical to sequential" ~count:10
    (Gen.pair (Gen.int_range 1 200) mode_gen)
    (fun (n, mode) ->
      let layout =
        Raw_formats.Fwb.layout [| Dtype.Int; Dtype.Float; Dtype.Bool |]
      in
      let path = fresh_path ".fwb" in
      Raw_formats.Fwb.write_file ~path layout
        (Seq.init n (fun i ->
             [|
               Value.Int (i * 3);
               Value.Float (float_of_int i /. 7.);
               Value.Bool (i mod 2 = 0);
             |]));
      let schema =
        Schema.of_pairs
          [ ("a", Dtype.Int); ("b", Dtype.Float); ("c", Dtype.Bool) ]
      in
      let run parallelism =
        let file = Raw_storage.Mmap_file.open_file path in
        delta_counters (fun () ->
            Raw_core.Scan_fwb.par_scan ~mode ~parallelism ~file ~layout
              ~schema ~needed:[ 0; 1; 2 ] ())
      in
      let c1, d1 = run 1 in
      let c4, d4 = run 4 in
      Array.for_all2 Column.equal c1 c4 && d1 = d4)

let prop_parallel_hep =
  qtest "parallel HEP scans are bit-identical to sequential" ~count:10
    events_gen
    (fun events ->
      let path = fresh_path ".hep" in
      Raw_formats.Hep.write_file ~path (List.to_seq events);
      (* flattened muon index, entry/item per dense particle row *)
      let pairs =
        List.concat
          (List.mapi
             (fun e (ev : Raw_formats.Hep.event) ->
               List.init (Array.length ev.muons) (fun i -> (e, i)))
             events)
      in
      let index =
        ( Array.of_list (List.map fst pairs),
          Array.of_list (List.map snd pairs) )
      in
      let run_events parallelism =
        let r = Raw_formats.Hep.Reader.open_file path in
        delta_counters (fun () ->
            Raw_core.Scan_hep.par_scan_events ~mode:Raw_core.Scan_csv.Jit
              ~parallelism ~reader:r ~needed:[ 0; 1 ] ~rowids:None ())
      in
      let run_particles parallelism =
        let r = Raw_formats.Hep.Reader.open_file path in
        delta_counters (fun () ->
            Raw_core.Scan_hep.par_scan_particles
              ~mode:Raw_core.Scan_csv.Interpreted ~parallelism ~reader:r
              ~coll:Raw_formats.Hep.Muons ~index ~needed:[ 0; 1; 2; 3 ]
              ~rowids:None)
      in
      let e1, de1 = run_events 1 in
      let e4, de4 = run_events 4 in
      let p1, dp1 = run_particles 1 in
      let p4, dp4 = run_particles 4 in
      Array.for_all2 Column.equal e1 e4
      && de1 = de4
      && Array.for_all2 Column.equal p1 p4
      && dp1 = dp4)

(* ---------------- io_stats merge algebra ---------------- *)

(* The morsel coordinator folds worker snapshots into its own table; the
   result must not depend on how the workers' deltas are grouped or
   ordered. Values are quarter-integers so float addition is exact and the
   property is about the merge, not rounding. *)
let snap_gen =
  Gen.list_size (Gen.int_range 0 10)
    (Gen.pair
       (Gen.oneofl [ "m.a"; "m.b"; "m.c"; "m.d" ])
       (Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 0 400)))

(* Each merge runs in a fresh domain: Io_stats tables are domain-local,
   so a spawned domain starts empty. *)
let merged snaps =
  Domain.join
    (Domain.spawn (fun () ->
         List.iter Raw_storage.Io_stats.merge snaps;
         Raw_storage.Io_stats.snapshot ()))

let prop_io_stats_merge =
  qtest "io_stats merge is associative and order-insensitive" ~count:30
    (Gen.triple snap_gen snap_gen snap_gen)
    (fun (a, b, c) ->
      let abc = merged [ a; b; c ] in
      abc = merged [ c; a; b ]
      && abc = merged [ merged [ a; b ]; c ]
      && abc = merged [ a; merged [ b; c ] ])

(* ---------------- end-to-end: SQL vs naive model ---------------- *)

let prop_sql_selection =
  qtest "SELECT MAX WHERE agrees with list model" ~count:30
    (Gen.pair (Gen.list_size (Gen.int_range 1 80) (Gen.int_range 0 1000))
       (Gen.int_range 0 1000))
    (fun (values, x) ->
      let rows = List.map (fun v -> [ v; v * 2 ]) values in
      let path = write_csv_rows rows in
      let db = Raw_core.Raw_db.create () in
      Raw_core.Raw_db.register_csv db ~name:"t" ~path
        ~columns:[ ("a", Dtype.Int); ("b", Dtype.Int) ] ();
      let got =
        Raw_core.Raw_db.scalar db
          (Printf.sprintf "SELECT MAX(b) FROM t WHERE a < %d" x)
      in
      let qualifying = List.filter (fun v -> v < x) values in
      let want =
        match qualifying with
        | [] -> Value.Null
        | l -> Value.Int (2 * List.fold_left max min_int l)
      in
      Value.equal got want)

let suites =
  [
    ( "props",
      [
        prop_parse_int;
        prop_parse_float;
        prop_sel_partition;
        prop_sel_compose;
        prop_lru_bounded;
        prop_gather_scatter;
        prop_filter_const;
        prop_aggregate;
        prop_hash_join;
        prop_scan_modes_agree;
        prop_fetch_matches_scan;
        prop_fwb_roundtrip;
        prop_hep_roundtrip;
        prop_group_by;
        prop_concat;
        prop_jsonl_extract;
        prop_btree;
        prop_csv_edges;
        prop_parallel_csv;
        prop_parallel_fwb;
        prop_parallel_hep;
        prop_io_stats_merge;
        prop_sql_selection;
      ] );
  ]
