(* Resource governance: deadlines and cooperative cancellation stop queries
   with typed errors and leave the adaptive state consistent; the unified
   memory budget shrinks consumers in priority order with exact accounting
   and degrades to streaming under pressure; admission control rejects with
   a typed [Overloaded]; configuration is validated at construction.

   Determinism notes: mid-scan cancellation uses the [trip_after_checks]
   testing hook (an atomic check countdown shared by all domains), never a
   real timer; admission tests occupy a slot with [Raw_db.with_admission]
   instead of racing domains. *)

open Raw_vector
open Raw_storage
open Raw_core
open Test_util

let counter (r : Executor.report) name =
  match List.assoc_opt name r.Executor.counters with
  | Some v -> int_of_float (Float.round v)
  | None -> 0

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* Sum of column c over the n-row grid: cell (r, c) = r * 100 + c. *)
let grid_sum ~n c = (100 * n * (n - 1) / 2) + (n * c)

(* A pooled shred for the grid table may be partially valid — that is its
   design — but every row it marks valid must hold exactly the raw file's
   value. A cancelled query must never leave half-written garbage behind a
   valid bit. *)
let check_shreds_consistent db =
  let pool = Catalog.shreds (Raw_db.catalog db) in
  Shred_pool.fold
    (fun key col () ->
      let c = key.Shred_pool.column in
      for r = 0 to Column.length col - 1 do
        match Column.get col r with
        | Value.Null -> ()
        | v ->
          check_value
            (Printf.sprintf "shred col%d row %d" c r)
            (Value.Int ((r * 100) + c))
            v
      done)
    pool ()

(* ------------------------------------------------------------------ *)
(* Cancellation and deadlines                                          *)
(* ------------------------------------------------------------------ *)

let cancel_unit_tests =
  [
    Alcotest.test_case "never token: inactive, check is free, cancel no-op"
      `Quick (fun () ->
        Alcotest.(check bool) "inactive" false (Cancel.active Cancel.never);
        Cancel.cancel Cancel.never;
        Cancel.check Cancel.never;
        Alcotest.(check bool) "still untripped" true
          (Cancel.triggered Cancel.never = None));
    Alcotest.test_case "cancel trips as User exactly once" `Quick (fun () ->
        let t = Cancel.create () in
        Alcotest.(check bool) "fresh" true (Cancel.triggered t = None);
        Cancel.cancel t;
        Cancel.cancel t;
        Alcotest.(check bool) "tripped User" true
          (Cancel.triggered t = Some Cancel.User);
        match Cancel.check t with
        | () -> Alcotest.fail "check should raise"
        | exception Cancel.Stop Cancel.User -> ());
    Alcotest.test_case "trip_after_checks charges exactly n checks" `Quick
      (fun () ->
        let t = Cancel.create ~trip_after_checks:2 () in
        Cancel.check t;
        Cancel.check t;
        match Cancel.check t with
        | () -> Alcotest.fail "third check should trip"
        | exception Cancel.Stop Cancel.User -> ());
    Alcotest.test_case "expired deadline trips as Deadline" `Quick (fun () ->
        let t = Cancel.create ~deadline_seconds:1e-9 () in
        Unix.sleepf 0.002;
        Alcotest.(check bool) "tripped Deadline" true
          (Cancel.triggered t = Some Cancel.Deadline));
  ]

let deadline_tests =
  [
    Alcotest.test_case "Config.deadline: typed error, progress snapshot"
      `Quick (fun () ->
        let config = { Config.default with Config.deadline = Some 1e-9 } in
        let db = grid_csv_db ~config ~n:100 ~m:3 () in
        match Raw_db.query db "SELECT SUM(col0) FROM t" with
        | (_ : Executor.report) ->
          Alcotest.fail "expected Deadline_exceeded"
        | exception Resource_error.Deadline_exceeded p ->
          Alcotest.(check bool) "progress sane" true
            (p.Resource_error.rows_scanned >= 0
            && p.Resource_error.io_seconds >= 0.
            && p.Resource_error.compile_seconds >= 0.
            && p.Resource_error.elapsed_seconds >= 0.));
    Alcotest.test_case "explicit token overrides the config deadline" `Quick
      (fun () ->
        (* generous config deadline, pre-tripped explicit token: the typed
           error is Cancelled, proving the caller's token won *)
        let config = { Config.default with Config.deadline = Some 3600. } in
        let db = grid_csv_db ~config ~n:100 ~m:3 () in
        let cancel = Cancel.create ~trip_after_checks:0 () in
        match Raw_db.query ~cancel db "SELECT SUM(col0) FROM t" with
        | (_ : Executor.report) -> Alcotest.fail "expected Cancelled"
        | exception Resource_error.Cancelled _ -> ());
    Alcotest.test_case "no deadline: reports carry no governance noise"
      `Quick (fun () ->
        let r = Raw_db.query (grid_csv_db ()) "SELECT SUM(col0) FROM t" in
        Alcotest.(check (list string)) "not degraded" [] r.Executor.degraded;
        Alcotest.(check bool) "no gov.* counters" true
          (List.for_all
             (fun (k, _) -> not (String.length k >= 4 && String.sub k 0 4 = "gov."))
             r.Executor.counters));
  ]

let cancellation_tests =
  [
    Alcotest.test_case "mid-scan cancel: typed error, engine still correct"
      `Quick (fun () ->
        let n = 4000 in
        let db = grid_csv_db ~n ~m:3 () in
        let cancel = Cancel.create ~trip_after_checks:3 () in
        (match Raw_db.query ~cancel db "SELECT SUM(col1) FROM t" with
         | (_ : Executor.report) -> Alcotest.fail "expected Cancelled"
         | exception Resource_error.Cancelled _ -> ());
        check_shreds_consistent db;
        check_value "re-run after cancel"
          (Value.Int (grid_sum ~n 1))
          (Raw_db.scalar db "SELECT SUM(col1) FROM t"));
    Alcotest.test_case
      "parallel cancel: all domains quiesce, posmap and shreds intact" `Quick
      (fun () ->
        let n = 8000 in
        let config = { Config.default with Config.parallelism = 4 } in
        let db = grid_csv_db ~config ~n ~m:4 () in
        let cancel = Cancel.create ~trip_after_checks:5 () in
        (match Raw_db.query ~cancel db "SELECT SUM(col2) FROM t" with
         | (_ : Executor.report) -> Alcotest.fail "expected Cancelled"
         | exception Resource_error.Cancelled _ -> ());
        check_shreds_consistent db;
        (* the full scan re-runs correctly on the state the cancelled query
           left behind... *)
        check_value "parallel re-run"
          (Value.Int (grid_sum ~n 2))
          (Raw_db.scalar db "SELECT SUM(col2) FROM t");
        (* ...and so does a posmap-driven point fetch *)
        check_value "point fetch through retained state" (Value.Int 420003)
          (Raw_db.scalar db "SELECT col3 FROM t WHERE col0 = 420000");
        (* identical to a database that was never cancelled *)
        let fresh = grid_csv_db ~config ~n ~m:4 () in
        let q = "SELECT col0, col3 FROM t WHERE col1 > 700000" in
        Alcotest.(check int) "same row set" 0
          (Stdlib.compare
             (rows_of_chunk (Raw_db.sql db q))
             (rows_of_chunk (Raw_db.sql fresh q))));
    qtest ~count:25 "prop: cancellation is clean at any trip point"
      QCheck2.Gen.(pair (int_range 0 40) (int_range 1 4))
      (fun (trips, par) ->
        let n = 2500 in
        let config = { Config.default with Config.parallelism = par } in
        let db = grid_csv_db ~config ~n ~m:3 () in
        let cancel = Cancel.create ~trip_after_checks:trips () in
        let expected = Value.Int (grid_sum ~n 2) in
        let first =
          match Raw_db.query ~cancel db "SELECT SUM(col2) FROM t" with
          | r -> Some (scalar_of r)
          | exception Resource_error.Cancelled _ -> None
        in
        (* a query that ran to completion must be right despite the armed
           token *)
        (match first with
         | Some v -> check_value "completed run" expected v
         | None -> ());
        check_shreds_consistent db;
        (* whatever state the cancelled run left, the engine answers the
           same query correctly afterwards *)
        Raw_db.scalar db "SELECT SUM(col2) FROM t" = expected);
  ]

(* ------------------------------------------------------------------ *)
(* Memory budget                                                       *)
(* ------------------------------------------------------------------ *)

let budget_unit_tests =
  [
    Alcotest.test_case "create rejects non-positive capacity" `Quick (fun () ->
        match Mem_budget.create ~capacity_bytes:0 with
        | (_ : Mem_budget.t) -> Alcotest.fail "expected Invalid_config"
        | exception Resource_error.Invalid_config _ -> ());
    Alcotest.test_case "reserve shrinks in priority order, exact accounting"
      `Quick (fun () ->
        let a = ref 600 and b = ref 300 in
        let calls = ref [] in
        let shrinker name r ~need =
          calls := !calls @ [ name ];
          let freed = min need !r in
          r := !r - freed;
          freed
        in
        let m = Mem_budget.create ~capacity_bytes:1000 in
        (* registered out of order: priority, not insertion, decides *)
        Mem_budget.register m ~name:"b" ~priority:1
          ~usage:(fun () -> !b)
          ~shrink:(shrinker "b" b);
        Mem_budget.register m ~name:"a" ~priority:0
          ~usage:(fun () -> !a)
          ~shrink:(shrinker "a" a);
        Alcotest.(check int) "used sums the probes" 900 (Mem_budget.used m);
        let ev0 = Io_stats.get "gov.evicted_bytes" in
        Alcotest.(check bool) "fits: no shrink" true
          (Mem_budget.reserve m ~bytes:100);
        Alcotest.(check (list string)) "untouched" [] !calls;
        Alcotest.(check bool) "pressure: shrinks" true
          (Mem_budget.reserve m ~bytes:300);
        Alcotest.(check (list string)) "lowest priority only" [ "a" ] !calls;
        Alcotest.(check int) "a freed exactly the need" 400 !a;
        Alcotest.(check int) "b untouched" 300 !b;
        Alcotest.(check int) "evicted bytes exact" 200
          (Io_stats.get "gov.evicted_bytes" - ev0));
    Alcotest.test_case "impossible reservation fails and is counted" `Quick
      (fun () ->
        let a = ref 500 in
        let m = Mem_budget.create ~capacity_bytes:1000 in
        Mem_budget.register m ~name:"a" ~priority:0
          ~usage:(fun () -> !a)
          ~shrink:(fun ~need ->
            let freed = min need !a in
            a := !a - freed;
            freed);
        let f0 = Io_stats.get "gov.reservation_failures" in
        Alcotest.(check bool) "cannot fit" false
          (Mem_budget.reserve m ~bytes:1100);
        Alcotest.(check int) "failure counted" 1
          (Io_stats.get "gov.reservation_failures" - f0);
        Alcotest.(check bool) "non-positive is free" true
          (Mem_budget.reserve m ~bytes:0));
    Alcotest.test_case "re-registering a name replaces the consumer" `Quick
      (fun () ->
        let m = Mem_budget.create ~capacity_bytes:1000 in
        Mem_budget.register m ~name:"a" ~priority:0
          ~usage:(fun () -> 700)
          ~shrink:(fun ~need:_ -> 0);
        Mem_budget.register m ~name:"a" ~priority:0
          ~usage:(fun () -> 10)
          ~shrink:(fun ~need:_ -> 0);
        Alcotest.(check int) "one consumer, new probe" 10 (Mem_budget.used m));
    Alcotest.test_case "shred pool evicts LRU victims, counted per item"
      `Quick (fun () ->
        let pool = Shred_pool.create ~capacity:8 in
        let key c = { Shred_pool.table = "t"; column = c } in
        let col c =
          Column.of_int_array (Array.init 100 (fun r -> (r * 100) + c))
        in
        Shred_pool.put pool (key 0) (col 0);
        Shred_pool.put pool (key 1) (col 1);
        Shred_pool.put pool (key 2) (col 2);
        (* touch column 0: column 1 becomes the LRU victim *)
        ignore (Shred_pool.find pool (key 0));
        let victim_bytes = Column.byte_size (col 1) in
        let e0 = Io_stats.get "gov.evictions.shreds" in
        let freed = Shred_pool.evict_bytes pool ~need:1 in
        Alcotest.(check int) "exactly one shred evicted" 1
          (Io_stats.get "gov.evictions.shreds" - e0);
        Alcotest.(check int) "freed the victim's bytes" victim_bytes freed;
        Alcotest.(check bool) "victim was the LRU entry" true
          (Shred_pool.find pool (key 1) = None
          && Shred_pool.find pool (key 0) <> None
          && Shred_pool.find pool (key 2) <> None));
  ]

let pressure_tests =
  [
    Alcotest.test_case
      "tiny budget: answers stay exact, degradation observable" `Quick
      (fun () ->
        let n = 400 in
        let config =
          { Config.default with Config.memory_budget = Some 2048 }
        in
        let db = grid_csv_db ~config ~n ~m:4 () in
        let r1 = Raw_db.query db "SELECT SUM(col1) FROM t" in
        check_value "first query exact" (Value.Int (grid_sum ~n 1))
          (scalar_of r1);
        let r2 = Raw_db.query db "SELECT SUM(col3) FROM t" in
        check_value "second query exact" (Value.Int (grid_sum ~n 3))
          (scalar_of r2);
        let gov r =
          counter r "gov.evicted_bytes"
          + counter r "gov.fallbacks.streaming"
          + counter r "gov.fallbacks.shred_pool"
          + counter r "gov.fallbacks.posmap"
        in
        Alcotest.(check bool) "governance acted" true (gov r1 + gov r2 > 0);
        Alcotest.(check bool) "degradation reported" true
          (r1.Executor.degraded <> [] || r2.Executor.degraded <> []);
        (* budget honored: the engine's adaptive state stays within it *)
        match Catalog.budget (Raw_db.catalog db) with
        | None -> Alcotest.fail "budget should be configured"
        | Some b ->
          Alcotest.(check bool) "usage within capacity" true
            (Mem_budget.used b <= Mem_budget.capacity b));
    Alcotest.test_case "unconstrained run caches; constrained run streams"
      `Quick (fun () ->
        let n = 400 in
        let unbounded = grid_csv_db ~n ~m:4 () in
        let r = Raw_db.query unbounded "SELECT SUM(col1) FROM t" in
        Alcotest.(check int) "no fallbacks when unbounded" 0
          (counter r "gov.fallbacks.streaming"
          + counter r "gov.fallbacks.shred_pool"
          + counter r "gov.fallbacks.posmap"));
    Alcotest.test_case "par == seq under memory pressure" `Quick (fun () ->
        let n = 600 in
        let mk par =
          let config =
            {
              Config.default with
              Config.memory_budget = Some 1500;
              parallelism = par;
            }
          in
          grid_csv_db ~config ~n ~m:4 ()
        in
        let seq = mk 1 and par = mk 4 in
        let queries =
          [
            "SELECT SUM(col2) FROM t";
            "SELECT col0, col3 FROM t WHERE col1 > 29000";
            "SELECT SUM(col2) FROM t";
            (* repeat: cross-query reuse under pressure *)
          ]
        in
        List.iter
          (fun q ->
            Alcotest.(check int) ("par == seq: " ^ q) 0
              (Stdlib.compare
                 (rows_of_chunk (Raw_db.sql seq q))
                 (rows_of_chunk (Raw_db.sql par q))))
          queries);
  ]

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let admission_tests =
  [
    Alcotest.test_case "full gate rejects with typed Overloaded" `Quick
      (fun () ->
        let config = { Config.default with Config.max_concurrent = Some 1 } in
        let db = grid_csv_db ~config ~n:50 ~m:3 () in
        let rej0 = Io_stats.get "gov.rejections" in
        Raw_db.with_admission db ~cancel:Cancel.never (fun () ->
            match Raw_db.query db "SELECT COUNT(*) FROM t" with
            | (_ : Executor.report) -> Alcotest.fail "expected Overloaded"
            | exception Resource_error.Overloaded { active; limit } ->
              Alcotest.(check int) "active" 1 active;
              Alcotest.(check int) "limit" 1 limit);
        Alcotest.(check int) "rejection counted" 1
          (Io_stats.get "gov.rejections" - rej0);
        (* the slot was released: admitted again *)
        check_value "recovered" (Value.Int 50)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t"));
    Alcotest.test_case "cancelled while queued: typed error, zero progress"
      `Quick (fun () ->
        (* the gate admits two, but the execution lock is held by the
           occupant — the queued query's pre-tripped token fires during the
           cancel-aware lock wait, before it ever runs *)
        let config = { Config.default with Config.max_concurrent = Some 2 } in
        let db = grid_csv_db ~config ~n:50 ~m:3 () in
        Raw_db.with_admission db ~cancel:Cancel.never (fun () ->
            let cancel = Cancel.create () in
            Cancel.cancel cancel;
            match Raw_db.query ~cancel db "SELECT COUNT(*) FROM t" with
            | (_ : Executor.report) -> Alcotest.fail "expected Cancelled"
            | exception Resource_error.Cancelled p ->
              Alcotest.(check int) "never ran" 0 p.Resource_error.rows_scanned);
        check_value "gate recovered" (Value.Int 50)
          (Raw_db.scalar db "SELECT COUNT(*) FROM t"));
    Alcotest.test_case "deadline expires while queued: Deadline_exceeded"
      `Quick (fun () ->
        let config = { Config.default with Config.max_concurrent = Some 2 } in
        let db = grid_csv_db ~config ~n:50 ~m:3 () in
        Raw_db.with_admission db ~cancel:Cancel.never (fun () ->
            let cancel = Cancel.create ~deadline_seconds:1e-9 () in
            Unix.sleepf 0.002;
            match Raw_db.query ~cancel db "SELECT COUNT(*) FROM t" with
            | (_ : Executor.report) ->
              Alcotest.fail "expected Deadline_exceeded"
            | exception Resource_error.Deadline_exceeded p ->
              Alcotest.(check int) "never ran" 0 p.Resource_error.rows_scanned));
    Alcotest.test_case "no gate configured: with_admission is identity"
      `Quick (fun () ->
        let db = grid_csv_db ~n:20 ~m:3 () in
        let v =
          Raw_db.with_admission db ~cancel:Cancel.never (fun () ->
              Raw_db.with_admission db ~cancel:Cancel.never (fun () -> 42))
        in
        Alcotest.(check int) "nested freely" 42 v);
  ]

(* ------------------------------------------------------------------ *)
(* Configuration validation                                            *)
(* ------------------------------------------------------------------ *)

let config_tests =
  let bad_knobs =
    [
      ("parallelism", { Config.default with Config.parallelism = 0 });
      ("chunk_rows", { Config.default with Config.chunk_rows = 0 });
      ("compile_seconds", { Config.default with Config.compile_seconds = -1. });
      ("posmap_every", { Config.default with Config.posmap_every = 0 });
      ( "shred_pool_columns",
        { Config.default with Config.shred_pool_columns = 0 } );
      ("hep_object_cache", { Config.default with Config.hep_object_cache = 0 });
      ( "page_size",
        {
          Config.default with
          Config.mmap =
            { Mmap_file.Config.default with Mmap_file.Config.page_size = 0 };
        } );
      ( "io_seconds_per_page",
        {
          Config.default with
          Config.mmap =
            {
              Mmap_file.Config.default with
              Mmap_file.Config.io_seconds_per_page = -1.;
            };
        } );
      ( "residency_capacity",
        {
          Config.default with
          Config.mmap =
            {
              Mmap_file.Config.default with
              Mmap_file.Config.residency_capacity = Some 0;
            };
        } );
      ("deadline", { Config.default with Config.deadline = Some 0. });
      ("deadline", { Config.default with Config.deadline = Some (-2.) });
      ("memory_budget", { Config.default with Config.memory_budget = Some 0 });
      ( "memory_budget",
        { Config.default with Config.memory_budget = Some (-4096) } );
      ("max_concurrent", { Config.default with Config.max_concurrent = Some 0 });
    ]
  in
  [
    Alcotest.test_case "default config validates" `Quick (fun () ->
        match Config.validate Config.default with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "default rejected: %s" msg);
    Alcotest.test_case "every bad knob rejected, named in the message" `Quick
      (fun () ->
        List.iter
          (fun (knob, config) ->
            match Config.validate config with
            | Ok _ -> Alcotest.failf "bad %s accepted" knob
            | Error msg ->
              Alcotest.(check bool)
                (Printf.sprintf "%S names the knob" msg)
                true (contains msg knob))
          bad_knobs);
    Alcotest.test_case "construction raises typed Invalid_config" `Quick
      (fun () ->
        let config = { Config.default with Config.parallelism = -3 } in
        match Raw_db.create ~config () with
        | (_ : Raw_db.t) -> Alcotest.fail "expected Invalid_config"
        | exception Resource_error.Invalid_config msg ->
          Alcotest.(check bool) "names parallelism" true
            (contains msg "parallelism"));
  ]

let suites =
  [
    ("governance:cancel", cancel_unit_tests);
    ("governance:deadline", deadline_tests);
    ("governance:cancellation", cancellation_tests);
    ("governance:budget", budget_unit_tests);
    ("governance:pressure", pressure_tests);
    ("governance:admission", admission_tests);
    ("governance:config", config_tests);
  ]
