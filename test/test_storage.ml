open Raw_storage

(* ---------------- Lru ---------------- *)

let lru_tests =
  [
    Alcotest.test_case "basic add/find" `Quick (fun () ->
        let l = Lru.create () in
        ignore (Lru.add l "a" 1);
        Alcotest.(check (option int)) "found" (Some 1) (Lru.find l "a");
        Alcotest.(check (option int)) "missing" None (Lru.find l "b"));
    Alcotest.test_case "capacity evicts least-recently-used" `Quick (fun () ->
        let l = Lru.create ~capacity:2 () in
        ignore (Lru.add l 1 "one");
        ignore (Lru.add l 2 "two");
        ignore (Lru.find l 1);
        (* 2 is now LRU *)
        let evicted = Lru.add l 3 "three" in
        Alcotest.(check bool) "evicted 2" true (evicted = [ (2, "two") ]);
        Alcotest.(check bool) "1 kept" true (Lru.mem l 1);
        Alcotest.(check bool) "3 kept" true (Lru.mem l 3));
    Alcotest.test_case "peek and mem do not touch recency" `Quick (fun () ->
        let l = Lru.create ~capacity:2 () in
        ignore (Lru.add l 1 ());
        ignore (Lru.add l 2 ());
        ignore (Lru.peek l 1);
        ignore (Lru.mem l 1);
        let evicted = Lru.add l 3 () in
        Alcotest.(check bool) "1 evicted despite peek" true (evicted = [ (1, ()) ]));
    Alcotest.test_case "replace keeps size and updates value" `Quick (fun () ->
        let l = Lru.create ~capacity:2 () in
        ignore (Lru.add l "k" 1);
        ignore (Lru.add l "k" 2);
        Alcotest.(check int) "size" 1 (Lru.length l);
        Alcotest.(check (option int)) "updated" (Some 2) (Lru.find l "k"));
    Alcotest.test_case "remove and clear" `Quick (fun () ->
        let l = Lru.create () in
        ignore (Lru.add l 1 ());
        ignore (Lru.add l 2 ());
        Lru.remove l 1;
        Alcotest.(check bool) "gone" false (Lru.mem l 1);
        Lru.clear l;
        Alcotest.(check int) "empty" 0 (Lru.length l));
    Alcotest.test_case "keys MRU-first" `Quick (fun () ->
        let l = Lru.create () in
        ignore (Lru.add l 1 ());
        ignore (Lru.add l 2 ());
        ignore (Lru.add l 3 ());
        ignore (Lru.find l 1);
        Alcotest.(check (list int)) "order" [ 1; 3; 2 ] (Lru.keys l));
    Alcotest.test_case "capacity zero rejects" `Quick (fun () ->
        let l = Lru.create ~capacity:0 () in
        let evicted = Lru.add l 1 "x" in
        Alcotest.(check bool) "bounced" true (evicted = [ (1, "x") ]);
        Alcotest.(check int) "never stored" 0 (Lru.length l));
    Alcotest.test_case "negative capacity rejected" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Lru.create: negative capacity")
          (fun () -> ignore (Lru.create ~capacity:(-1) () : (int, int) Lru.t)));
    Alcotest.test_case "fold visits MRU first" `Quick (fun () ->
        let l = Lru.create () in
        ignore (Lru.add l 1 10);
        ignore (Lru.add l 2 20);
        let order = List.rev (Lru.fold (fun k _ acc -> k :: acc) l []) in
        Alcotest.(check (list int)) "order" [ 2; 1 ] order);
  ]

(* ---------------- Mmap_file ---------------- *)

let mk_file ?config n =
  Mmap_file.of_bytes ?config ~name:"test" (Bytes.make n 'x')

let small_pages ?(residency_capacity = None) () =
  { Mmap_file.Config.page_size = 16; io_seconds_per_page = 0.001;
    residency_capacity }

let mmap_tests =
  [
    Alcotest.test_case "first touch faults, second hits" `Quick (fun () ->
        let f = mk_file ~config:(small_pages ()) 64 in
        Mmap_file.touch f 0 4;
        Alcotest.(check int) "fault" 1 (Mmap_file.faults f);
        Mmap_file.touch f 4 4;
        Alcotest.(check int) "still one fault" 1 (Mmap_file.faults f);
        Alcotest.(check int) "hit" 1 (Mmap_file.hits f));
    Alcotest.test_case "span across pages faults each page" `Quick (fun () ->
        let f = mk_file ~config:(small_pages ()) 64 in
        Mmap_file.touch f 10 20;
        (* bytes 10..29 => pages 0 and 1 *)
        Alcotest.(check int) "two faults" 2 (Mmap_file.faults f);
        Alcotest.(check int) "resident" 2 (Mmap_file.resident_pages f));
    Alcotest.test_case "simulated io accumulates per fault" `Quick (fun () ->
        let f = mk_file ~config:(small_pages ()) 64 in
        Mmap_file.touch f 0 64;
        Alcotest.(check (float 1e-9)) "4 pages" 0.004
          (Mmap_file.simulated_io_seconds f));
    Alcotest.test_case "drop_cache makes pages cold again" `Quick (fun () ->
        let f = mk_file ~config:(small_pages ()) 32 in
        Mmap_file.touch f 0 32;
        Mmap_file.drop_cache f;
        Alcotest.(check int) "counters reset" 0 (Mmap_file.faults f);
        Mmap_file.touch f 0 8;
        Alcotest.(check int) "faults again" 1 (Mmap_file.faults f));
    Alcotest.test_case "reset_counters keeps residency" `Quick (fun () ->
        let f = mk_file ~config:(small_pages ()) 32 in
        Mmap_file.touch f 0 32;
        Mmap_file.reset_counters f;
        Mmap_file.touch f 0 8;
        Alcotest.(check int) "warm: no new faults" 0 (Mmap_file.faults f);
        Alcotest.(check int) "warm hit" 1 (Mmap_file.hits f));
    Alcotest.test_case "bounded residency refaults after eviction" `Quick (fun () ->
        let config = small_pages ~residency_capacity:(Some 2) () in
        let f = mk_file ~config 64 in
        (* touch pages 0,1,2 (capacity 2): page 0 evicted *)
        Mmap_file.touch f 0 1;
        Mmap_file.touch f 16 1;
        Mmap_file.touch f 32 1;
        Alcotest.(check int) "resident bounded" 2 (Mmap_file.resident_pages f);
        Mmap_file.touch f 48 1;
        (* avoid last-page fast path *)
        Mmap_file.touch f 0 1;
        Alcotest.(check int) "page 0 refaults" 5 (Mmap_file.faults f));
    Alcotest.test_case "out-of-range touch clamps" `Quick (fun () ->
        let f = mk_file ~config:(small_pages ()) 32 in
        Mmap_file.touch f (-5) 100;
        Alcotest.(check int) "only real pages" 2 (Mmap_file.faults f));
    Alcotest.test_case "fork_view isolates counters, absorb merges" `Quick
      (fun () ->
        let f = mk_file ~config:(small_pages ()) 64 in
        Mmap_file.touch f 0 16;
        (* page 0 resident *)
        let v = Mmap_file.fork_view f in
        Mmap_file.touch v 0 16;
        (* warm in the view, cold counters start at 0 *)
        Alcotest.(check int) "view hit" 1 (Mmap_file.hits v);
        Alcotest.(check int) "view no fault" 0 (Mmap_file.faults v);
        Mmap_file.touch v 16 16;
        Alcotest.(check int) "view fault" 1 (Mmap_file.faults v);
        (* parent untouched so far *)
        Alcotest.(check int) "parent faults unchanged" 1 (Mmap_file.faults f);
        Alcotest.(check int) "parent resident unchanged" 1
          (Mmap_file.resident_pages f);
        Mmap_file.absorb ~into:f v;
        Alcotest.(check int) "faults summed" 2 (Mmap_file.faults f);
        Alcotest.(check int) "hits summed" 1 (Mmap_file.hits f);
        Alcotest.(check int) "residency unioned" 2 (Mmap_file.resident_pages f);
        (* page 1 now warm in the parent *)
        Mmap_file.touch f 16 1;
        Alcotest.(check int) "no refault after absorb" 2 (Mmap_file.faults f));
    Alcotest.test_case "fork_view/absorb with bounded residency" `Quick
      (fun () ->
        let config = small_pages ~residency_capacity:(Some 2) () in
        let f = mk_file ~config 64 in
        Mmap_file.touch f 0 1;
        let v = Mmap_file.fork_view f in
        Mmap_file.touch v 16 1;
        Mmap_file.touch v 32 1;
        (* view holds pages 16.. and 32..; capacity 2 evicted page 0 *)
        Mmap_file.absorb ~into:f v;
        Alcotest.(check bool) "resident within capacity" true
          (Mmap_file.resident_pages f <= 2));
    Alcotest.test_case "open_file reads contents" `Quick (fun () ->
        let path = Test_util.fresh_path ".bin" in
        let oc = open_out_bin path in
        output_string oc "hello world";
        close_out oc;
        let f = Mmap_file.open_file path in
        Alcotest.(check int) "length" 11 (Mmap_file.length f);
        Alcotest.(check string) "contents" "hello world"
          (Bytes.to_string (Mmap_file.bytes f)));
  ]

(* ---------------- Io_stats / Timing ---------------- *)

let stats_tests =
  [
    Alcotest.test_case "counters add and reset" `Quick (fun () ->
        Io_stats.reset "test.counter";
        Io_stats.incr "test.counter";
        Io_stats.add "test.counter" 4;
        Alcotest.(check int) "value" 5 (Io_stats.get "test.counter");
        Io_stats.reset "test.counter";
        Alcotest.(check int) "reset" 0 (Io_stats.get "test.counter"));
    Alcotest.test_case "float counters" `Quick (fun () ->
        Io_stats.reset "test.float";
        Io_stats.add_float "test.float" 0.5;
        Io_stats.add_float "test.float" 0.25;
        Alcotest.(check (float 1e-9)) "value" 0.75 (Io_stats.get_float "test.float"));
    Alcotest.test_case "get rounds to nearest" `Quick (fun () ->
        (* accumulated float error must not truncate a whole count away *)
        Io_stats.reset "test.round";
        for _ = 1 to 10 do Io_stats.add_float "test.round" 0.1 done;
        Alcotest.(check int) "0.1 x 10 = 1" 1 (Io_stats.get "test.round");
        Alcotest.(check (float 1e-12)) "get_float exact"
          (0.1 *. 10.) (Io_stats.get_float "test.round");
        Io_stats.reset "test.round";
        Io_stats.add_float "test.round" 2.4;
        Alcotest.(check int) "2.4 -> 2" 2 (Io_stats.get "test.round");
        Io_stats.add_float "test.round" 0.2;
        Alcotest.(check int) "2.6 -> 3" 3 (Io_stats.get "test.round"));
    Alcotest.test_case "merge adds deltas into this domain" `Quick (fun () ->
        Io_stats.reset "test.merge.a";
        Io_stats.reset "test.merge.b";
        Io_stats.add "test.merge.a" 2;
        Io_stats.merge [ ("test.merge.a", 3.); ("test.merge.b", 0.5) ];
        Alcotest.(check int) "existing summed" 5 (Io_stats.get "test.merge.a");
        Alcotest.(check (float 1e-9)) "new created" 0.5
          (Io_stats.get_float "test.merge.b"));
    Alcotest.test_case "counters are domain-local" `Quick (fun () ->
        Io_stats.reset "test.dls";
        Io_stats.add "test.dls" 7;
        let seen_in_child =
          Domain.join
            (Domain.spawn (fun () ->
                 let before = Io_stats.get "test.dls" in
                 Io_stats.add "test.dls" 100;
                 before))
        in
        Alcotest.(check int) "child starts from zero" 0 seen_in_child;
        Alcotest.(check int) "parent unaffected" 7 (Io_stats.get "test.dls"));
    Alcotest.test_case "snapshot sorted and includes counter" `Quick (fun () ->
        Io_stats.reset_all ();
        Io_stats.add "test.b" 1;
        Io_stats.add "test.a" 2;
        let snap = List.filter (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "test.") (Io_stats.snapshot ()) in
        Alcotest.(check bool) "sorted" true
          (List.map fst snap = List.sort String.compare (List.map fst snap)));
    Alcotest.test_case "span accumulates" `Quick (fun () ->
        let s = Timing.Span.create "phase" in
        Timing.Span.add s 0.5;
        Timing.Span.add s 0.25;
        Alcotest.(check (float 1e-9)) "total" 0.75 (Timing.Span.total s);
        Timing.Span.reset s;
        Alcotest.(check (float 1e-9)) "reset" 0. (Timing.Span.total s));
    Alcotest.test_case "time measures and returns" `Quick (fun () ->
        let r, dt = Timing.time (fun () -> 42) in
        Alcotest.(check int) "result" 42 r;
        Alcotest.(check bool) "non-negative" true (dt >= 0.));
  ]

let suites =
  [
    ("storage.lru", lru_tests);
    ("storage.mmap", mmap_tests);
    ("storage.stats", stats_tests);
  ]
